//! Numeric guards: NaN/Inf detection and the policy for reacting to it.
//!
//! A single NaN in a gradient silently poisons every weight it touches;
//! by the time accuracy collapses the cause is long gone. The guards here
//! check tensors at phase boundaries and per training step, and the
//! [`GuardPolicy`] decides what happens when a check trips.

use crate::error::{ResilienceError, Result};

/// Summary of a finiteness scan over a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FiniteReport {
    /// Values scanned.
    pub total: usize,
    /// NaN values found.
    pub nan: usize,
    /// Infinite values found.
    pub inf: usize,
    /// Index of the first non-finite value, if any.
    pub first_bad: Option<usize>,
}

impl FiniteReport {
    /// Whether every value was finite.
    pub fn is_finite(&self) -> bool {
        self.nan == 0 && self.inf == 0
    }

    /// Folds another report (e.g. for a later buffer) into this one.
    /// `offset` shifts the other report's `first_bad` index.
    pub fn merge(&mut self, other: &FiniteReport, offset: usize) {
        if self.first_bad.is_none() {
            self.first_bad = other.first_bad.map(|i| i + offset);
        }
        self.total += other.total;
        self.nan += other.nan;
        self.inf += other.inf;
    }
}

/// Scans an f32 buffer for NaN/Inf.
pub fn scan_finite_f32(values: &[f32]) -> FiniteReport {
    let mut rep = FiniteReport {
        total: values.len(),
        ..FiniteReport::default()
    };
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            rep.nan += 1;
        } else if v.is_infinite() {
            rep.inf += 1;
        } else {
            continue;
        }
        if rep.first_bad.is_none() {
            rep.first_bad = Some(i);
        }
    }
    rep
}

/// Scans an f64 buffer for NaN/Inf.
pub fn scan_finite_f64(values: &[f64]) -> FiniteReport {
    let mut rep = FiniteReport {
        total: values.len(),
        ..FiniteReport::default()
    };
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            rep.nan += 1;
        } else if v.is_infinite() {
            rep.inf += 1;
        } else {
            continue;
        }
        if rep.first_bad.is_none() {
            rep.first_bad = Some(i);
        }
    }
    rep
}

/// Errors unless every value in `values` is finite.
///
/// # Errors
///
/// [`ResilienceError::Decode`] is *not* used here; non-finite data is its
/// own failure mode, reported as [`ResilienceError::Corrupt`] with a
/// diagnosis naming `what`, the counts and the first offending index.
pub fn ensure_finite_f32(what: &str, values: &[f32]) -> Result<()> {
    let rep = scan_finite_f32(values);
    if rep.is_finite() {
        Ok(())
    } else {
        Err(non_finite(what, &rep))
    }
}

/// f64 twin of [`ensure_finite_f32`].
///
/// # Errors
///
/// Same as [`ensure_finite_f32`].
pub fn ensure_finite_f64(what: &str, values: &[f64]) -> Result<()> {
    let rep = scan_finite_f64(values);
    if rep.is_finite() {
        Ok(())
    } else {
        Err(non_finite(what, &rep))
    }
}

fn non_finite(what: &str, rep: &FiniteReport) -> ResilienceError {
    ResilienceError::Corrupt(format!(
        "{what}: {} NaN + {} Inf of {} values (first at index {})",
        rep.nan,
        rep.inf,
        rep.total,
        rep.first_bad.unwrap_or(0)
    ))
}

/// What to do when a numeric guard trips during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuardPolicy {
    /// Stop immediately with a diagnosis (default — silent corruption is
    /// worse than a dead run).
    #[default]
    Abort,
    /// Drop the offending batch: zero the gradients, skip the optimizer
    /// step, continue with the next batch.
    SkipBatch,
    /// Skip the step and halve the learning rate, up to `max_halvings`
    /// times; abort once the budget is spent.
    HalveLr {
        /// Halvings allowed before giving up.
        max_halvings: u32,
    },
}

impl GuardPolicy {
    /// Parses a CLI spec: `abort`, `skip-batch`, or `halve-lr[:N]`.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Decode`] on an unrecognised spec.
    pub fn parse(spec: &str) -> Result<Self> {
        match spec {
            "abort" => Ok(GuardPolicy::Abort),
            "skip-batch" => Ok(GuardPolicy::SkipBatch),
            "halve-lr" => Ok(GuardPolicy::HalveLr { max_halvings: 3 }),
            other => {
                if let Some(n) = other.strip_prefix("halve-lr:") {
                    let max_halvings = n.parse().map_err(|_| {
                        ResilienceError::Decode(format!("bad halve-lr count {n:?}"))
                    })?;
                    Ok(GuardPolicy::HalveLr { max_halvings })
                } else {
                    Err(ResilienceError::Decode(format!(
                        "unknown guard policy {other:?} (expected abort, skip-batch or halve-lr[:N])"
                    )))
                }
            }
        }
    }
}

/// Mutable per-run state for applying a [`GuardPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct GuardState {
    policy: GuardPolicy,
    halvings: u32,
    trips: u64,
    lr_scale: f32,
}

/// The action a trainer must take after a guard trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuardAction {
    /// Abort training with the given diagnosis.
    Abort,
    /// Zero gradients and skip this optimizer step.
    SkipStep,
    /// Skip this step and continue with the returned LR scale applied.
    SkipStepWithLrScale(f32),
}

impl GuardState {
    /// Fresh state for a policy.
    pub fn new(policy: GuardPolicy) -> Self {
        GuardState {
            policy,
            halvings: 0,
            trips: 0,
            lr_scale: 1.0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> GuardPolicy {
        self.policy
    }

    /// Times a guard has tripped so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Current learning-rate scale (1.0 until `HalveLr` trips).
    pub fn lr_scale(&self) -> f32 {
        self.lr_scale
    }

    /// Records a trip and decides the trainer's next move.
    pub fn on_trip(&mut self) -> GuardAction {
        self.trips += 1;
        match self.policy {
            GuardPolicy::Abort => GuardAction::Abort,
            GuardPolicy::SkipBatch => GuardAction::SkipStep,
            GuardPolicy::HalveLr { max_halvings } => {
                if self.halvings >= max_halvings {
                    GuardAction::Abort
                } else {
                    self.halvings += 1;
                    self.lr_scale *= 0.5;
                    GuardAction::SkipStepWithLrScale(self.lr_scale)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_counts_and_locates() {
        let rep = scan_finite_f32(&[1.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 2.0]);
        assert_eq!(rep.total, 5);
        assert_eq!(rep.nan, 1);
        assert_eq!(rep.inf, 2);
        assert_eq!(rep.first_bad, Some(1));
        assert!(!rep.is_finite());
        assert!(scan_finite_f64(&[0.0, -5.5]).is_finite());
    }

    #[test]
    fn merge_accumulates_with_offset() {
        let mut a = scan_finite_f32(&[1.0, 2.0]);
        let b = scan_finite_f32(&[f32::NAN]);
        a.merge(&b, 2);
        assert_eq!(a.total, 3);
        assert_eq!(a.nan, 1);
        assert_eq!(a.first_bad, Some(2));
    }

    #[test]
    fn ensure_finite_diagnoses() {
        assert!(ensure_finite_f32("scores", &[1.0]).is_ok());
        let err = ensure_finite_f64("loss", &[f64::NAN]).unwrap_err();
        assert!(err.to_string().contains("loss"));
        assert!(err.to_string().contains("1 NaN"));
    }

    #[test]
    fn policy_parse() {
        assert_eq!(GuardPolicy::parse("abort").unwrap(), GuardPolicy::Abort);
        assert_eq!(
            GuardPolicy::parse("skip-batch").unwrap(),
            GuardPolicy::SkipBatch
        );
        assert_eq!(
            GuardPolicy::parse("halve-lr").unwrap(),
            GuardPolicy::HalveLr { max_halvings: 3 }
        );
        assert_eq!(
            GuardPolicy::parse("halve-lr:5").unwrap(),
            GuardPolicy::HalveLr { max_halvings: 5 }
        );
        assert!(GuardPolicy::parse("retry-forever").is_err());
        assert!(GuardPolicy::parse("halve-lr:x").is_err());
    }

    #[test]
    fn abort_policy_aborts_immediately() {
        let mut s = GuardState::new(GuardPolicy::Abort);
        assert_eq!(s.on_trip(), GuardAction::Abort);
        assert_eq!(s.trips(), 1);
    }

    #[test]
    fn skip_batch_never_aborts() {
        let mut s = GuardState::new(GuardPolicy::SkipBatch);
        for _ in 0..10 {
            assert_eq!(s.on_trip(), GuardAction::SkipStep);
        }
        assert_eq!(s.trips(), 10);
        assert_eq!(s.lr_scale(), 1.0);
    }

    #[test]
    fn halve_lr_is_bounded() {
        let mut s = GuardState::new(GuardPolicy::HalveLr { max_halvings: 2 });
        assert_eq!(s.on_trip(), GuardAction::SkipStepWithLrScale(0.5));
        assert_eq!(s.on_trip(), GuardAction::SkipStepWithLrScale(0.25));
        assert_eq!(s.on_trip(), GuardAction::Abort);
        assert_eq!(s.lr_scale(), 0.25);
    }
}
