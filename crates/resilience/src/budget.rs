//! Search budgets: probe-count and wall-clock limits.
//!
//! The threshold search probes accuracy by re-quantising and evaluating
//! the network; on a slow machine an aggressive grid can run for hours.
//! A budget lets a run end *gracefully* — keeping the best thresholds
//! found so far — instead of being killed from outside.

use std::time::Instant;

/// Limits on the threshold search. `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SearchBudget {
    /// Maximum number of accuracy probes.
    pub max_probes: Option<u64>,
    /// Maximum wall-clock seconds.
    pub max_seconds: Option<f64>,
}

impl SearchBudget {
    /// A budget with no limits (never exhausts).
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// Whether any limit is set.
    pub fn is_limited(&self) -> bool {
        self.max_probes.is_some() || self.max_seconds.is_some()
    }
}

/// Why a budget ended the search early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetExhausted {
    /// The probe limit was reached.
    Probes {
        /// Probes used (equals the limit).
        used: u64,
    },
    /// The wall-clock limit was reached.
    WallClock {
        /// Seconds elapsed when the check fired.
        elapsed: u64,
    },
}

impl std::fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExhausted::Probes { used } => write!(f, "probe budget exhausted ({used} probes)"),
            BudgetExhausted::WallClock { elapsed } => {
                write!(f, "wall-clock budget exhausted (~{elapsed}s elapsed)")
            }
        }
    }
}

/// Tracks consumption against a [`SearchBudget`].
#[derive(Debug, Clone)]
pub struct BudgetTracker {
    budget: SearchBudget,
    started: Instant,
    probes: u64,
}

impl BudgetTracker {
    /// Starts the clock.
    pub fn start(budget: SearchBudget) -> Self {
        BudgetTracker {
            budget,
            started: Instant::now(),
            probes: 0,
        }
    }

    /// Records one accuracy probe.
    pub fn record_probe(&mut self) {
        self.probes += 1;
    }

    /// Probes recorded so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Seconds since the tracker started.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Returns the exhaustion reason once any limit is hit.
    pub fn exhausted(&self) -> Option<BudgetExhausted> {
        if let Some(max) = self.budget.max_probes {
            if self.probes >= max {
                return Some(BudgetExhausted::Probes { used: self.probes });
            }
        }
        if let Some(max) = self.budget.max_seconds {
            let elapsed = self.elapsed_seconds();
            if elapsed >= max {
                return Some(BudgetExhausted::WallClock {
                    elapsed: elapsed as u64,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut t = BudgetTracker::start(SearchBudget::unlimited());
        assert!(!t.budget.is_limited());
        for _ in 0..1000 {
            t.record_probe();
        }
        assert_eq!(t.exhausted(), None);
    }

    #[test]
    fn probe_limit_trips_at_exactly_max() {
        let mut t = BudgetTracker::start(SearchBudget {
            max_probes: Some(3),
            max_seconds: None,
        });
        t.record_probe();
        t.record_probe();
        assert_eq!(t.exhausted(), None);
        t.record_probe();
        assert_eq!(t.exhausted(), Some(BudgetExhausted::Probes { used: 3 }));
    }

    #[test]
    fn wall_clock_limit_trips() {
        let t = BudgetTracker::start(SearchBudget {
            max_probes: None,
            max_seconds: Some(0.0),
        });
        assert!(matches!(
            t.exhausted(),
            Some(BudgetExhausted::WallClock { .. })
        ));
    }

    #[test]
    fn exhaustion_reason_displays() {
        assert!(BudgetExhausted::Probes { used: 7 }
            .to_string()
            .contains("7 probes"));
        assert!(BudgetExhausted::WallClock { elapsed: 12 }
            .to_string()
            .contains("12s"));
    }
}
