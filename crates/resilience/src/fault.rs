//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is armed once per run and fires each fault exactly
//! once, at a deterministic point: a named pipeline phase, a specific
//! optimizer step, or the next checkpoint write. Because the trigger is
//! positional rather than random, an interrupted-then-resumed run can be
//! compared bit-for-bit against an uninterrupted one.

use crate::error::{ResilienceError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A deterministic set of faults to inject into one run.
///
/// All trigger state is atomic, so a plan can be shared across threads
/// behind an `Arc` without locks.
#[derive(Debug, Default)]
pub struct FaultPlan {
    fail_phase: Option<String>,
    fail_phase_armed: AtomicBool,
    poison_step: Option<u64>,
    poison_armed: AtomicBool,
    truncate_phase: Option<String>,
    truncate_armed: AtomicBool,
    steps_seen: AtomicU64,
    kill_replica: Option<(String, u64)>,
    kill_armed: AtomicBool,
    fleet_requests_seen: AtomicU64,
}

impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.fail_phase == other.fail_phase
            && self.poison_step == other.poison_step
            && self.truncate_phase == other.truncate_phase
            && self.kill_replica == other.kill_replica
            && self.fail_phase_armed.load(Ordering::SeqCst)
                == other.fail_phase_armed.load(Ordering::SeqCst)
            && self.poison_armed.load(Ordering::SeqCst) == other.poison_armed.load(Ordering::SeqCst)
            && self.truncate_armed.load(Ordering::SeqCst)
                == other.truncate_armed.load(Ordering::SeqCst)
            && self.kill_armed.load(Ordering::SeqCst) == other.kill_armed.load(Ordering::SeqCst)
            && self.steps_seen.load(Ordering::SeqCst) == other.steps_seen.load(Ordering::SeqCst)
            && self.fleet_requests_seen.load(Ordering::SeqCst)
                == other.fleet_requests_seen.load(Ordering::SeqCst)
    }
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        FaultPlan {
            fail_phase: self.fail_phase.clone(),
            fail_phase_armed: AtomicBool::new(self.fail_phase_armed.load(Ordering::SeqCst)),
            poison_step: self.poison_step,
            poison_armed: AtomicBool::new(self.poison_armed.load(Ordering::SeqCst)),
            truncate_phase: self.truncate_phase.clone(),
            truncate_armed: AtomicBool::new(self.truncate_armed.load(Ordering::SeqCst)),
            steps_seen: AtomicU64::new(self.steps_seen.load(Ordering::SeqCst)),
            kill_replica: self.kill_replica.clone(),
            kill_armed: AtomicBool::new(self.kill_armed.load(Ordering::SeqCst)),
            fleet_requests_seen: AtomicU64::new(self.fleet_requests_seen.load(Ordering::SeqCst)),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.fail_phase.is_none()
            && self.poison_step.is_none()
            && self.truncate_phase.is_none()
            && self.kill_replica.is_none()
    }

    /// Arms a one-shot failure at the end of the named pipeline phase
    /// (after its work completes, before its checkpoint is written).
    pub fn fail_at_phase(mut self, phase: &str) -> Self {
        self.fail_phase = Some(phase.to_string());
        self.fail_phase_armed = AtomicBool::new(true);
        self
    }

    /// Arms a one-shot gradient poisoning (NaN) at the given global
    /// optimizer step (0-based).
    pub fn poison_gradient_at_step(mut self, step: u64) -> Self {
        self.poison_step = Some(step);
        self.poison_armed = AtomicBool::new(true);
        self
    }

    /// Arms a one-shot truncation of the named phase's checkpoint file
    /// right after it is written.
    pub fn truncate_checkpoint(mut self, phase: &str) -> Self {
        self.truncate_phase = Some(phase.to_string());
        self.truncate_armed = AtomicBool::new(true);
        self
    }

    /// Arms a one-shot replica kill: the fleet tier reports each admitted
    /// request through [`FaultPlan::note_fleet_request`], and the plan
    /// names the replica to kill as the `requests`-th request is
    /// admitted. The trigger is positional (an admission count, not a
    /// timestamp), so a chaos drill fires at a reproducible point in the
    /// request stream at any worker or client count.
    pub fn kill_replica_after(mut self, replica: &str, requests: u64) -> Self {
        self.kill_replica = Some((replica.to_string(), requests.max(1)));
        self.kill_armed = AtomicBool::new(true);
        self
    }

    /// Parses a CLI spec. Grammar, comma-separated:
    /// `fail-at:<phase>`, `poison-grad:<step>`, `truncate:<phase>`,
    /// `kill-replica:<name>@<requests>`.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Decode`] on an unrecognised clause.
    pub fn parse(spec: &str) -> Result<Self> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let clause = clause.trim();
            if let Some(phase) = clause.strip_prefix("fail-at:") {
                plan = plan.fail_at_phase(phase);
            } else if let Some(step) = clause.strip_prefix("poison-grad:") {
                let step = step.parse().map_err(|_| {
                    ResilienceError::Decode(format!("bad poison-grad step {step:?}"))
                })?;
                plan = plan.poison_gradient_at_step(step);
            } else if let Some(phase) = clause.strip_prefix("truncate:") {
                plan = plan.truncate_checkpoint(phase);
            } else if let Some(spec) = clause.strip_prefix("kill-replica:") {
                let (name, count) = spec.split_once('@').ok_or_else(|| {
                    ResilienceError::Decode(format!(
                        "bad kill-replica clause {spec:?} (expected <name>@<requests>)"
                    ))
                })?;
                let count: u64 = count.parse().map_err(|_| {
                    ResilienceError::Decode(format!("bad kill-replica request count {count:?}"))
                })?;
                if name.is_empty() || count == 0 {
                    return Err(ResilienceError::Decode(format!(
                        "bad kill-replica clause {spec:?} (name must be non-empty, count positive)"
                    )));
                }
                plan = plan.kill_replica_after(name, count);
            } else {
                return Err(ResilienceError::Decode(format!(
                    "unknown fault clause {clause:?} (expected fail-at:<phase>, poison-grad:<step>, \
                     truncate:<phase> or kill-replica:<name>@<requests>)"
                )));
            }
        }
        Ok(plan)
    }

    /// Fires (once) if the plan kills the run at the end of `phase`.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::FaultInjected`] the first time the armed phase
    /// is reached; `Ok(())` otherwise.
    pub fn check_phase(&self, phase: &str) -> Result<()> {
        if self.fail_phase.as_deref() == Some(phase)
            && self.fail_phase_armed.swap(false, Ordering::SeqCst)
        {
            return Err(ResilienceError::FaultInjected(format!("phase {phase}")));
        }
        Ok(())
    }

    /// Advances the global step counter and reports (once) whether this
    /// step's gradients should be poisoned with NaN.
    pub fn poison_this_step(&self) -> bool {
        let step = self.steps_seen.fetch_add(1, Ordering::SeqCst);
        self.poison_step == Some(step) && self.poison_armed.swap(false, Ordering::SeqCst)
    }

    /// Advances the fleet admission counter and reports (once) the
    /// replica to kill when the armed admission count is reached.
    ///
    /// The fleet calls this on every admitted request; the drill fires on
    /// the thread whose admission crosses the threshold, so exactly one
    /// caller observes `Some` even under concurrent submission.
    pub fn note_fleet_request(&self) -> Option<String> {
        let admitted = self.fleet_requests_seen.fetch_add(1, Ordering::SeqCst) + 1;
        match &self.kill_replica {
            Some((name, at))
                if admitted >= *at && self.kill_armed.swap(false, Ordering::SeqCst) =>
            {
                Some(name.clone())
            }
            _ => None,
        }
    }

    /// The replica named by an armed `kill-replica` clause, if any —
    /// lets a drill validate the plan against the fleet topology before
    /// starting.
    pub fn kill_replica_target(&self) -> Option<&str> {
        self.kill_replica.as_ref().map(|(name, _)| name.as_str())
    }

    /// Reports (once) whether the just-written checkpoint for `phase`
    /// should be truncated to simulate a torn write.
    pub fn should_truncate(&self, phase: &str) -> bool {
        self.truncate_phase.as_deref() == Some(phase)
            && self.truncate_armed.swap(false, Ordering::SeqCst)
    }

    /// Truncates `path` to half its length — the canonical torn-write
    /// simulation used by the chaos harness.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] if the file cannot be read or rewritten.
    pub fn truncate_file(path: &std::path::Path) -> Result<()> {
        let bytes = std::fs::read(path)
            .map_err(|e| ResilienceError::Io(format!("read {path:?} for truncation: {e}")))?;
        let keep = bytes.len() / 2;
        std::fs::write(path, &bytes[..keep])
            .map_err(|e| ResilienceError::Io(format!("truncate {path:?}: {e}")))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.check_phase("search").is_ok());
        assert!(!plan.poison_this_step());
        assert!(!plan.should_truncate("scores"));
    }

    #[test]
    fn phase_failure_fires_exactly_once() {
        let plan = FaultPlan::none().fail_at_phase("search");
        assert!(plan.check_phase("scores").is_ok());
        assert!(matches!(
            plan.check_phase("search"),
            Err(ResilienceError::FaultInjected(_))
        ));
        // one-shot: a resumed run passes the same point cleanly
        assert!(plan.check_phase("search").is_ok());
    }

    #[test]
    fn poison_fires_at_exact_step_once() {
        let plan = FaultPlan::none().poison_gradient_at_step(2);
        assert!(!plan.poison_this_step()); // step 0
        assert!(!plan.poison_this_step()); // step 1
        assert!(plan.poison_this_step()); // step 2
        assert!(!plan.poison_this_step()); // step 3
    }

    #[test]
    fn truncate_fires_once() {
        let plan = FaultPlan::none().truncate_checkpoint("calibrate");
        assert!(!plan.should_truncate("scores"));
        assert!(plan.should_truncate("calibrate"));
        assert!(!plan.should_truncate("calibrate"));
    }

    #[test]
    fn parse_grammar() {
        let plan = FaultPlan::parse("fail-at:search, poison-grad:12 ,truncate:scores").unwrap();
        assert!(!plan.is_empty());
        assert!(plan.check_phase("search").is_err());
        assert!(plan.should_truncate("scores"));
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("poison-grad:nope").is_err());
        assert!(FaultPlan::parse("explode:now").is_err());
    }

    #[test]
    fn kill_replica_fires_exactly_once_at_the_threshold() {
        let plan = FaultPlan::none().kill_replica_after("replica-1", 3);
        assert!(!plan.is_empty());
        assert_eq!(plan.kill_replica_target(), Some("replica-1"));
        assert_eq!(plan.note_fleet_request(), None); // 1st admission
        assert_eq!(plan.note_fleet_request(), None); // 2nd
        assert_eq!(plan.note_fleet_request(), Some("replica-1".into())); // 3rd
        assert_eq!(plan.note_fleet_request(), None); // one-shot
    }

    #[test]
    fn kill_replica_parse_grammar() {
        let plan = FaultPlan::parse("kill-replica:replica-2@64").unwrap();
        assert_eq!(plan.kill_replica_target(), Some("replica-2"));
        for i in 0..64 {
            let fired = plan.note_fleet_request();
            assert_eq!(fired.is_some(), i == 63, "admission {i}");
        }
        assert!(FaultPlan::parse("kill-replica:replica-2").is_err());
        assert!(FaultPlan::parse("kill-replica:replica-2@zero").is_err());
        assert!(FaultPlan::parse("kill-replica:@5").is_err());
        assert!(FaultPlan::parse("kill-replica:r@0").is_err());
    }

    #[test]
    fn plans_without_kill_never_fire_on_requests() {
        let plan = FaultPlan::none().fail_at_phase("search");
        for _ in 0..10 {
            assert_eq!(plan.note_fleet_request(), None);
        }
        assert_eq!(plan.kill_replica_target(), None);
    }

    #[test]
    fn truncate_file_halves() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("cbq_fault_trunc_{}", std::process::id()));
        std::fs::write(&path, vec![7u8; 100]).unwrap();
        FaultPlan::truncate_file(&path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 50);
        std::fs::remove_file(&path).ok();
    }
}
