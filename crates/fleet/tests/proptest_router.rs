//! Property tests of the consistent-hash router — the two guarantees
//! the fleet's failover story rests on:
//!
//! 1. **Balance**: over a large key set, every replica's share of keys
//!    stays inside a tolerance band around the fair share (virtual
//!    nodes keep the arc lengths from degenerating).
//! 2. **Minimal movement**: removing one replica re-routes *only* the
//!    keys that replica owned; every other key keeps its exact route.
//!    This is what makes permanent replica retirement cheap and what
//!    bounds the blast radius of a kill.
//!
//! Plus the pure-function properties (same ring + same id ⇒ same route,
//! failover order is a permutation rooted at the route), which the
//! replay byte-identity drill indirectly leans on.
//!
//! The `proptest!` blocks explore arbitrary replica sets and key
//! streams; the plain `#[test]` companions pin one adversarial instance
//! of each property so the invariants are still exercised when the
//! property harness is unavailable.

use cbq_fleet::{HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

/// Distinct replica names `n0..n{count}` with a salt so the name set
/// itself varies across cases.
fn names(count: usize, salt: u64) -> Vec<String> {
    (0..count).map(|i| format!("n{salt:x}-{i}")).collect()
}

/// Key stream derived from a seed with an LCG — ids are arbitrary u64s,
/// not necessarily dense.
fn keys(count: usize, mut seed: u64) -> Vec<u64> {
    (0..count)
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed
        })
        .collect()
}

/// Asserts every replica's key count lies within `[fair/3, 3*fair]`.
/// With 128 vnodes the per-replica share spread is ~1/sqrt(128) ≈ 9%
/// relative, so a 3x band has enormous margin while still catching a
/// degenerate ring (one replica owning ~everything or ~nothing).
fn assert_balanced(ring: &HashRing, ids: &[u64]) {
    let mut counts = vec![0usize; ring.len()];
    for &id in ids {
        counts[ring.route_index(id)] += 1;
    }
    let fair = ids.len() as f64 / ring.len() as f64;
    for (idx, &c) in counts.iter().enumerate() {
        assert!(
            (c as f64) >= fair / 3.0 && (c as f64) <= fair * 3.0,
            "replica {} owns {} of {} keys (fair share {:.0})",
            ring.names()[idx],
            c,
            ids.len(),
            fair
        );
    }
}

/// Asserts removal moved only the removed replica's keys.
fn assert_minimal_movement(ring: &HashRing, removed: &str, ids: &[u64]) -> usize {
    let shrunk = ring.without(removed).unwrap();
    let mut moved = 0usize;
    for &id in ids {
        let before = ring.route(id);
        let after = shrunk.route(id);
        if before == removed {
            assert_ne!(
                after, removed,
                "key {id} still routed to the removed replica"
            );
            moved += 1;
        } else {
            assert_eq!(after, before, "key {id} moved though its replica survived");
        }
    }
    moved
}

proptest! {
    /// Key ownership stays within the tolerance band for any replica
    /// count and any key stream.
    #[test]
    fn balance_within_tolerance_band(
        replicas in 2usize..7,
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ring = HashRing::new(&names(replicas, salt), DEFAULT_VNODES).unwrap();
        let ids = keys(4000, seed);
        assert_balanced(&ring, &ids);
    }

    /// Removing any one replica re-routes exactly its own keys — the
    /// moved fraction matches that replica's ownership, and survivors
    /// keep every key they had.
    #[test]
    fn removal_moves_only_the_removed_replicas_keys(
        replicas in 2usize..7,
        victim in 0usize..7,
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ring = HashRing::new(&names(replicas, salt), DEFAULT_VNODES).unwrap();
        let ids = keys(2500, seed);
        let removed = ring.names()[victim % replicas].clone();
        let owned = ids.iter().filter(|&&id| ring.route(id) == removed).count();
        let moved = assert_minimal_movement(&ring, &removed, &ids);
        prop_assert_eq!(moved, owned);
    }

    /// Routing is a pure function of (membership, id): two rings built
    /// from the same names agree everywhere, and failover order is a
    /// permutation of the replicas rooted at the primary route.
    #[test]
    fn routing_is_pure_and_failover_is_a_rooted_permutation(
        replicas in 1usize..7,
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let ns = names(replicas, salt);
        let a = HashRing::new(&ns, DEFAULT_VNODES).unwrap();
        let b = HashRing::new(&ns, DEFAULT_VNODES).unwrap();
        for &id in &keys(300, seed) {
            prop_assert_eq!(a.route_index(id), b.route_index(id));
            let order = a.failover_order(id);
            prop_assert_eq!(order.len(), replicas);
            prop_assert_eq!(order[0], a.route_index(id));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..replicas).collect::<Vec<usize>>());
        }
    }
}

/// Pinned instance of `balance_within_tolerance_band`.
#[test]
fn pinned_balance_within_tolerance_band() {
    for replicas in [2usize, 3, 4, 6] {
        let ring = HashRing::new(&names(replicas, 0xCB0), DEFAULT_VNODES).unwrap();
        let ids = keys(4000, 0x5EED_0001);
        assert_balanced(&ring, &ids);
    }
}

/// Pinned instance of `removal_moves_only_the_removed_replicas_keys`.
#[test]
fn pinned_removal_is_minimal_movement() {
    let ring = HashRing::new(&names(4, 0xFA11), DEFAULT_VNODES).unwrap();
    let ids = keys(2500, 0x5EED_0002);
    for victim in ring.names().to_vec() {
        let owned = ids.iter().filter(|&&id| ring.route(id) == victim).count();
        let moved = assert_minimal_movement(&ring, &victim, &ids);
        assert_eq!(moved, owned);
        assert!(owned > 0, "replica {victim} owned nothing out of 2500 keys");
    }
}

/// Pinned instance of `routing_is_pure_and_failover_is_a_rooted_permutation`.
#[test]
fn pinned_failover_order_is_rooted_permutation() {
    let ns = names(5, 0xF0F0);
    let a = HashRing::new(&ns, DEFAULT_VNODES).unwrap();
    let b = HashRing::new(&ns, DEFAULT_VNODES).unwrap();
    for &id in &keys(500, 0x5EED_0003) {
        assert_eq!(a.route_index(id), b.route_index(id));
        let order = a.failover_order(id);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], a.route_index(id));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
