//! The fleet client: deterministic routing, bounded failover, retry
//! budgets, and the chaos-drill kill/restart hook.
//!
//! One [`Fleet`] owns N replicas (each a [`Transport`], today the
//! loopback kind), a [`HashRing`] mapping request ids to replicas, and
//! the retry machinery. A request's full journey:
//!
//! 1. The fault plan's positional kill trigger is consulted
//!    ([`FaultPlan::note_fleet_request`]) — when it fires, the victim
//!    replica is killed (graceful drain) and restarted *before* this
//!    request is admitted, so the drill's timing is a deterministic
//!    function of the admission count, not of wall-clock racing.
//! 2. The ring yields the replica failover order for the id.
//! 3. Each attempt admits on the cursor's replica and waits the ticket.
//!    [`ServeError::Overloaded`] costs a retry-budget token and a
//!    deterministic backoff; [`ServeError::ReplicaDown`] /
//!    [`ServeError::ShuttingDown`] fail over immediately and
//!    budget-free (a drained replica sheds no load — dropping its
//!    traffic would lose admitted work). Terminal errors return
//!    immediately; attempts are bounded by [`RetryPolicy::max_attempts`].
//!
//! Why this preserves the serving tier's bit-identity contract: every
//! replica shares one [`ModelRegistry`] and every response's canonical
//! bytes ([`InferResponse::canonical_bytes`]) exclude timing/batching
//! metadata, so *which* replica served a request — or whether it was
//! re-admitted after a kill — cannot change the replay log.

use crate::retry::{wait_backoff, RetryBudget, RetryPolicy};
use crate::router::{HashRing, DEFAULT_VNODES};
use crate::transport::{LoopbackReplica, Transport};
use cbq_resilience::FaultPlan;
use cbq_serve::{
    InferResponse, ModelHandle, ModelRegistry, Result, ServeClock, ServeError, ServeStats,
    ServerConfig, SystemClock,
};
use cbq_telemetry::Telemetry;
use cbq_tensor::dispatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fleet construction knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Replica count (each gets its own worker pool and queue).
    pub replicas: usize,
    /// Per-replica server config (batch policy + workers).
    pub server: ServerConfig,
    /// Virtual nodes per replica on the routing ring.
    pub vnodes: usize,
    /// Retry/failover policy for client calls.
    pub retry: RetryPolicy,
    /// Retry-budget deposit per request (tokens per request).
    pub budget_ratio: f64,
    /// Retry-budget burst capacity (whole tokens).
    pub budget_cap: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            server: ServerConfig::default(),
            vnodes: DEFAULT_VNODES,
            retry: RetryPolicy::default(),
            budget_ratio: 0.2,
            budget_cap: 1000,
        }
    }
}

/// Stable replica names: `replica-0`, `replica-1`, …
pub fn replica_name(index: usize) -> String {
    format!("replica-{index}")
}

#[derive(Debug, Default)]
struct FleetCounters {
    retries: AtomicU64,
    shed: AtomicU64,
    failover: AtomicU64,
    readmitted: AtomicU64,
    budget_exhausted: AtomicU64,
    replica_restarts: AtomicU64,
}

/// One replica's contribution to [`FleetStats`].
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Replica name.
    pub name: String,
    /// Restarts after kills.
    pub restarts: u64,
    /// Merged statistics across the replica's generations.
    pub stats: ServeStats,
}

/// Aggregate fleet statistics returned by [`Fleet::shutdown`].
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Per-replica breakdown, in replica-index order.
    pub replicas: Vec<ReplicaReport>,
    /// All replicas merged into one [`ServeStats`] view.
    pub merged: ServeStats,
    /// Re-attempts of any kind (`fleet.retries`).
    pub retries: u64,
    /// Overload rejections observed by fleet clients — every
    /// `Overloaded` seen, retried or not (`fleet.shed`).
    pub shed: u64,
    /// Re-attempts that moved to a different replica (`fleet.failover`).
    pub failover: u64,
    /// Requests re-admitted after their replica died post-admission
    /// without answering (`fleet.readmitted`).
    pub readmitted: u64,
    /// Retries refused by the exhausted budget (`fleet.budget_exhausted`).
    pub budget_exhausted: u64,
    /// Replica restarts performed (`fleet.replica_restarts`).
    pub replica_restarts: u64,
}

/// A multi-replica serving fleet over one shared model registry.
///
/// Cheap to share: all request methods take `&self`, so wrap in an
/// [`Arc`] and hand clones to client threads.
pub struct Fleet {
    registry: Arc<ModelRegistry>,
    replicas: Vec<Arc<dyn Transport>>,
    router: HashRing,
    policy: RetryPolicy,
    budget: RetryBudget,
    faults: Option<Arc<FaultPlan>>,
    telemetry: Telemetry,
    clock: Arc<dyn ServeClock>,
    counters: FleetCounters,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("replicas", &self.router.names())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Starts a fleet on the system clock with no fault plan.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero replicas or invalid
    /// server/retry/budget knobs.
    pub fn start(
        registry: Arc<ModelRegistry>,
        config: FleetConfig,
        telemetry: Telemetry,
    ) -> Result<Fleet> {
        Self::start_with(registry, config, Arc::new(SystemClock::new()), telemetry)
    }

    /// Starts a fleet with an explicit clock (tests inject a
    /// [`ManualClock`](cbq_serve::ManualClock)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fleet::start`].
    pub fn start_with(
        registry: Arc<ModelRegistry>,
        config: FleetConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
    ) -> Result<Fleet> {
        Self::start_with_faults(registry, config, clock, telemetry, None)
    }

    /// Starts a fleet with an optional fault plan wired into the request
    /// path: a `kill-replica:<name>@<requests>` trigger kills and
    /// restarts the named replica once the fleet has admitted that many
    /// requests.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fleet::start`].
    pub fn start_with_faults(
        registry: Arc<ModelRegistry>,
        config: FleetConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<Fleet> {
        if config.replicas == 0 {
            return Err(ServeError::InvalidConfig(
                "fleet needs at least one replica".into(),
            ));
        }
        config.retry.validate()?;
        let budget = RetryBudget::new(config.budget_ratio, config.budget_cap)?;
        let names: Vec<String> = (0..config.replicas).map(replica_name).collect();
        let router = HashRing::new(&names, config.vnodes)?;
        if let Some(plan) = &faults {
            if let Some(victim) = plan.kill_replica_target() {
                if !names.iter().any(|n| n == victim) {
                    return Err(ServeError::InvalidConfig(format!(
                        "fault plan targets unknown replica {victim:?} (fleet has {})",
                        names.len()
                    )));
                }
            }
        }
        let mut replicas: Vec<Arc<dyn Transport>> = Vec::with_capacity(config.replicas);
        for name in &names {
            replicas.push(Arc::new(LoopbackReplica::start(
                name.clone(),
                registry.clone(),
                config.server.clone(),
                clock.clone(),
                telemetry.clone(),
            )?));
        }
        telemetry.gauge("fleet.replicas", config.replicas as f64);
        // The replicas' servers pinned bit-exact numerics on start; echo
        // the fleet-wide dispatch resolution once at the fleet level.
        telemetry.gauge("kernels.isa", dispatch::active_isa().gauge_value());
        telemetry.gauge("kernels.numerics", dispatch::numerics_mode().gauge_value());
        Ok(Fleet {
            registry,
            replicas,
            router,
            policy: config.retry,
            budget,
            faults,
            telemetry,
            clock,
            counters: FleetCounters::default(),
            next_id: AtomicU64::new(1),
        })
    }

    /// The registry shared by every replica.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The routing ring.
    pub fn router(&self) -> &HashRing {
        &self.router
    }

    /// Replica names in index order.
    pub fn replica_names(&self) -> &[String] {
        self.router.names()
    }

    /// The replica with this name.
    pub fn replica(&self, name: &str) -> Option<&Arc<dyn Transport>> {
        self.replicas.iter().find(|r| r.name() == name)
    }

    /// Propagates a model cutover to every replica: installs a
    /// seq-pinned route for `to` on each replica in index order and
    /// returns `(replica name, replica-local cutover seq)` pairs, also in
    /// index order. Admission seqs are per-replica, so the cutover seqs
    /// differ across replicas — what is fleet-invariant is the *rule*:
    /// on every replica, requests before its seq execute the old version
    /// and requests at or after it the new one, window-aligned.
    ///
    /// Down replicas are skipped (their next generation starts from the
    /// shared registry's latest state anyway); a fleet where *no* replica
    /// accepted the route returns the last error.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] / [`ServeError::InvalidConfig`] from
    /// the first replica that rejects the route for a non-liveness
    /// reason, or [`ServeError::ReplicaDown`] when every replica was
    /// down.
    pub fn install_cutover(&self, to: &ModelHandle, window: u64) -> Result<Vec<(String, u64)>> {
        let mut out = Vec::with_capacity(self.replicas.len());
        let mut last_down: Option<ServeError> = None;
        for replica in &self.replicas {
            match replica.install_route(to, window) {
                Ok(seq) => out.push((replica.name().to_string(), seq)),
                Err(e @ ServeError::ReplicaDown { .. }) => last_down = Some(e),
                Err(e) => return Err(e),
            }
        }
        if out.is_empty() {
            return Err(last_down.unwrap_or(ServeError::ShuttingDown));
        }
        self.telemetry.counter_add("fleet.cutovers", 1);
        Ok(out)
    }

    /// Kills a replica by name: admission stops, admitted requests
    /// drain, in-flight fleet calls fail over. Returns the generation's
    /// statistics (`None` when already down).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an unknown replica name.
    pub fn kill(&self, name: &str) -> Result<Option<ServeStats>> {
        let replica = self
            .replica(name)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown replica {name:?}")))?;
        Ok(replica.kill())
    }

    /// Restarts a killed replica by name (no-op when up).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] for an unknown replica name, or the
    /// server start error.
    pub fn restart(&self, name: &str) -> Result<()> {
        let replica = self
            .replica(name)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown replica {name:?}")))?;
        replica.restart()?;
        self.counters
            .replica_restarts
            .fetch_add(1, Ordering::SeqCst);
        self.telemetry.counter_add("fleet.replica_restarts", 1);
        Ok(())
    }

    /// The chaos-drill hook: called once per fleet request, kills and
    /// restarts the fault plan's victim when the positional trigger
    /// fires. Runs synchronously on the triggering client's thread so
    /// the kill point in the admission stream is deterministic.
    fn poke_fault_plan(&self) {
        let Some(plan) = &self.faults else { return };
        let Some(victim) = plan.note_fleet_request() else {
            return;
        };
        if let Some(replica) = self.replica(&victim) {
            replica.kill();
            if replica.restart().is_ok() {
                self.counters
                    .replica_restarts
                    .fetch_add(1, Ordering::SeqCst);
                self.telemetry.counter_add("fleet.replica_restarts", 1);
            }
        }
    }

    /// Submits under an auto-assigned id and waits for the response,
    /// with routing, failover, and retries applied.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Fleet::infer_with_id`].
    pub fn infer(&self, model: &ModelHandle, sample: Vec<f32>) -> Result<InferResponse> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.infer_with_id(id, model, sample, None)
    }

    /// Full-control blocking inference: caller-chosen id (the routing
    /// key — replayable logs must pin it) plus an optional ground-truth
    /// label for accuracy telemetry.
    ///
    /// # Errors
    ///
    /// Terminal errors immediately ([`ServeError::is_terminal`]);
    /// retryable errors once attempts ([`RetryPolicy::max_attempts`]) or
    /// the overload budget are exhausted.
    pub fn infer_with_id(
        &self,
        id: u64,
        model: &ModelHandle,
        sample: Vec<f32>,
        label: Option<usize>,
    ) -> Result<InferResponse> {
        self.poke_fault_plan();
        self.budget.note_request();
        let order = self.router.failover_order(id);
        let mut attempt: u32 = 0;
        let mut overload_retries: u32 = 0;
        let mut cursor = 0usize;
        loop {
            attempt += 1;
            let replica = &self.replicas[order[cursor % order.len()]];
            let admitted = replica.submit(id, model, sample.clone(), label);
            let (outcome, was_admitted) = match admitted {
                Ok(ticket) => (ticket.wait(), true),
                Err(e) => (Err(e), false),
            };
            let err = match outcome {
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
            if matches!(err, ServeError::Overloaded { .. }) {
                self.counters.shed.fetch_add(1, Ordering::SeqCst);
                self.telemetry.counter_add("fleet.shed", 1);
            }
            if err.is_terminal() || attempt >= self.policy.max_attempts {
                return Err(err);
            }
            if was_admitted {
                // Admitted but never answered: the replica died between
                // admission and reply. Re-admit on the next replica.
                self.counters.readmitted.fetch_add(1, Ordering::SeqCst);
                self.telemetry.counter_add("fleet.readmitted", 1);
            }
            match &err {
                ServeError::Overloaded { .. } => {
                    if !self.budget.try_spend() {
                        self.counters
                            .budget_exhausted
                            .fetch_add(1, Ordering::SeqCst);
                        self.telemetry.counter_add("fleet.budget_exhausted", 1);
                        return Err(err);
                    }
                    overload_retries += 1;
                    wait_backoff(&self.clock, self.policy.backoff(overload_retries));
                }
                // ReplicaDown / ShuttingDown: fail over immediately and
                // budget-free — see the module docs. Once a full ring
                // walk found no live replica, back off before walking
                // again instead of hot-spinning through the attempt
                // budget while a restart is in flight.
                _ => {
                    if cursor + 1 >= order.len() {
                        let wraps = ((cursor + 1) / order.len()) as u32;
                        wait_backoff(&self.clock, self.policy.backoff(wraps));
                    }
                }
            }
            cursor += 1;
            self.counters.retries.fetch_add(1, Ordering::SeqCst);
            self.telemetry.counter_add("fleet.retries", 1);
            if order.len() > 1 {
                self.counters.failover.fetch_add(1, Ordering::SeqCst);
                self.telemetry.counter_add("fleet.failover", 1);
            }
        }
    }

    /// Drains every replica gracefully and returns the merged fleet
    /// statistics (per-replica breakdown plus fleet-level counters).
    pub fn shutdown(self) -> FleetStats {
        let mut reports = Vec::with_capacity(self.replicas.len());
        let mut merged = ServeStats::empty();
        for replica in &self.replicas {
            replica.kill();
            let stats = replica.lifetime_stats();
            merged.merge(&stats);
            reports.push(ReplicaReport {
                name: replica.name().to_string(),
                restarts: replica.restarts(),
                stats,
            });
        }
        let stats = FleetStats {
            replicas: reports,
            merged,
            retries: self.counters.retries.load(Ordering::SeqCst),
            shed: self.counters.shed.load(Ordering::SeqCst),
            failover: self.counters.failover.load(Ordering::SeqCst),
            readmitted: self.counters.readmitted.load(Ordering::SeqCst),
            budget_exhausted: self.counters.budget_exhausted.load(Ordering::SeqCst),
            replica_restarts: self.counters.replica_restarts.load(Ordering::SeqCst),
        };
        self.telemetry
            .gauge("fleet.completed", stats.merged.completed as f64);
        self.telemetry.flush();
        stats
    }
}
