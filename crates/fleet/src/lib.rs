#![warn(missing_docs)]

//! # cbq-fleet — fault-tolerant multi-replica serving for cbq-serve
//!
//! The fleet tier turns one micro-batching [`Server`](cbq_serve::Server)
//! into N replicas behind a deterministic router, with client-side
//! failover that survives a replica being killed mid-run — without
//! giving up one bit of the serving tier's determinism contract.
//!
//! Pieces:
//!
//! - [`HashRing`] — consistent-hash router with virtual nodes and fixed
//!   (seed-free) hash mixers. `route(id)` is a pure function of ring
//!   membership and the request id; `failover_order(id)` extends it to a
//!   full deterministic replica permutation. Removing a replica moves
//!   only the keys it owned.
//! - [`Transport`] / [`LoopbackReplica`] — the replica boundary: admit,
//!   liveness, graceful kill (drain admitted work, tickets stay
//!   redeemable), restart. Loopback channels today; the trait is the
//!   seam where a socket transport slots in later.
//! - [`RetryPolicy`] / [`RetryBudget`] — bounded attempts, deterministic
//!   exponential backoff on the injected clock (no jitter, no wall-clock
//!   sleeps in tests), and a token-bucket budget so shed traffic cannot
//!   amplify into a retry storm. Failover after replica *death* is
//!   budget-free: dropping drained traffic would lose admitted work.
//! - [`Fleet`] — the client: routes, admits, waits, fails over on
//!   [`ServeError::Overloaded`](cbq_serve::ServeError::Overloaded) /
//!   [`ReplicaDown`](cbq_serve::ServeError::ReplicaDown) /
//!   [`ShuttingDown`](cbq_serve::ServeError::ShuttingDown), re-admits
//!   requests a dying replica never answered, and runs the chaos drill:
//!   a [`FaultPlan`](cbq_resilience::FaultPlan)
//!   `kill-replica:<name>@<requests>` trigger kills and restarts a
//!   replica once the fleet has admitted that many requests.
//!   [`Fleet::install_cutover`] propagates a requantized model version to
//!   every live replica as a seq-pinned, window-aligned admission route —
//!   the fleet face of the serve tier's hot-swap primitive.
//!
//! **Invariant the whole tier is built around:** the fleet-wide replay
//! log — responses sorted by request id, canonical bytes concatenated —
//! is byte-identical at any replica count, any worker count, and any
//! fault timing. Replicas share one model registry and canonical bytes
//! exclude timing/batching metadata, so routing, retries, failover, and
//! kills are all invisible to replay. `tests/fleet_determinism.rs` and
//! the `fleet_load` bench gate this, along with zero lost admitted
//! requests across a kill/restart drill.

mod fleet;
mod retry;
mod router;
mod transport;

pub use fleet::{replica_name, Fleet, FleetConfig, FleetStats, ReplicaReport};
pub use retry::{RetryBudget, RetryPolicy};
pub use router::{HashRing, DEFAULT_VNODES};
pub use transport::{LoopbackReplica, Transport};

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_resilience::FaultPlan;
    use cbq_serve::{
        offline_logits, ArchSpec, Backend, BatchPolicy, ModelArtifact, ModelRegistry, ServeError,
        ServerConfig,
    };
    use cbq_telemetry::{Collector, Telemetry};
    use std::sync::Arc;
    use std::time::Duration;

    fn artifact(sizes: &[usize]) -> ModelArtifact {
        let arch = ArchSpec::Mlp(sizes.to_vec());
        let mut net = arch.build().unwrap();
        ModelArtifact {
            arch,
            input_shape: vec![sizes[0]],
            state: cbq_nn::state_dict(&mut net),
            quant: None,
            baseline_mix: None,
            packed: None,
        }
    }

    fn small_config(replicas: usize) -> FleetConfig {
        FleetConfig {
            replicas,
            server: ServerConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_micros(50),
                    queue_capacity: 64,
                },
                workers: 2,
            },
            ..FleetConfig::default()
        }
    }

    fn sample(i: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|j| ((i * 31 + j as u64) % 17) as f32 * 0.1 - 0.8)
            .collect()
    }

    #[test]
    fn fleet_matches_offline_reference_on_every_replica() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &artifact(&[5, 7, 3]), Backend::Float)
            .unwrap();
        let model = registry.get(&handle).unwrap();
        let fleet = Fleet::start(registry, small_config(3), Telemetry::disabled()).unwrap();
        for id in 1..=30u64 {
            let s = sample(id, 5);
            let resp = fleet.infer_with_id(id, &handle, s.clone(), None).unwrap();
            let offline = offline_logits(&model, &s).unwrap();
            for (a, b) in resp.logits.iter().zip(&offline) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = fleet.shutdown();
        assert_eq!(stats.merged.completed, 30);
        assert_eq!(stats.merged.failed, 0);
        assert_eq!(stats.retries, 0);
        // 30 ids across the ring reach more than one replica.
        assert!(
            stats
                .replicas
                .iter()
                .filter(|r| r.stats.completed > 0)
                .count()
                > 1
        );
    }

    #[test]
    fn killed_replica_sheds_then_failover_serves_and_restart_recovers() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &artifact(&[4, 6, 2]), Backend::Float)
            .unwrap();
        let fleet = Fleet::start(registry, small_config(2), Telemetry::disabled()).unwrap();
        let victim = replica_name(0);
        assert!(fleet.kill(&victim).unwrap().is_some());
        assert!(
            fleet.kill(&victim).unwrap().is_none(),
            "double kill is a no-op"
        );
        assert!(!fleet.replica(&victim).unwrap().is_up());
        // Every request still completes: ids owned by the dead replica
        // fail over to the survivor.
        for id in 1..=20u64 {
            fleet
                .infer_with_id(id, &handle, sample(id, 4), None)
                .unwrap();
        }
        fleet.restart(&victim).unwrap();
        assert!(fleet.replica(&victim).unwrap().is_up());
        for id in 21..=40u64 {
            fleet
                .infer_with_id(id, &handle, sample(id, 4), None)
                .unwrap();
        }
        let stats = fleet.shutdown();
        assert_eq!(stats.merged.completed, 40);
        assert_eq!(stats.replica_restarts, 1);
        assert!(stats.failover > 0, "dead-replica ids must have failed over");
        assert_eq!(stats.shed, 0);
        assert!(fleet_err_is_bad_request());
    }

    fn fleet_err_is_bad_request() -> bool {
        let registry = Arc::new(ModelRegistry::new());
        let fleet = Fleet::start(registry, small_config(1), Telemetry::disabled()).unwrap();
        let bad = matches!(fleet.kill("nope"), Err(ServeError::BadRequest(_)))
            && matches!(fleet.restart("nope"), Err(ServeError::BadRequest(_)));
        fleet.shutdown();
        bad
    }

    #[test]
    fn admitted_tickets_survive_a_kill() {
        // Graceful-drain contract at the transport level: a request
        // admitted before the kill is answered during the drain.
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &artifact(&[4, 5, 2]), Backend::Float)
            .unwrap();
        let replica = LoopbackReplica::start(
            "r",
            registry,
            small_config(1).server,
            Arc::new(cbq_serve::SystemClock::new()),
            Telemetry::disabled(),
        )
        .unwrap();
        let ticket = replica.submit(7, &handle, sample(7, 4), None).unwrap();
        let stats = replica.kill().unwrap();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.completed, 1);
        let resp = ticket.wait().unwrap();
        assert_eq!(resp.id, 7);
        assert!(matches!(
            replica.submit(8, &handle, sample(8, 4), None),
            Err(ServeError::ReplicaDown { .. })
        ));
        assert_eq!(replica.queue_depth(), 0);
        replica.restart().unwrap();
        assert_eq!(replica.restarts(), 1);
        let resp = replica
            .submit(9, &handle, sample(9, 4), None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.id, 9);
        replica.kill();
        assert_eq!(replica.lifetime_stats().completed, 2);
    }

    #[test]
    fn fault_plan_kill_fires_once_and_loses_nothing() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &artifact(&[4, 6, 3]), Backend::Float)
            .unwrap();
        let victim = replica_name(1);
        let plan = Arc::new(FaultPlan::parse(&format!("kill-replica:{victim}@10")).unwrap());
        let collector = Arc::new(Collector::new());
        let fleet = Fleet::start_with_faults(
            registry,
            small_config(3),
            Arc::new(cbq_serve::SystemClock::new()),
            Telemetry::new(vec![collector.clone()]),
            Some(plan),
        )
        .unwrap();
        for id in 1..=50u64 {
            fleet
                .infer_with_id(id, &handle, sample(id, 4), None)
                .unwrap();
        }
        let stats = fleet.shutdown();
        assert_eq!(stats.merged.completed, 50);
        assert_eq!(stats.replica_restarts, 1);
        let restarted: Vec<_> = stats.replicas.iter().filter(|r| r.restarts == 1).collect();
        assert_eq!(restarted.len(), 1);
        assert_eq!(restarted[0].name, victim);
        assert_eq!(collector.counter_total("fleet.replica_restarts"), 1);
    }

    #[test]
    fn install_cutover_propagates_in_replica_order_and_reroutes_admissions() {
        let registry = Arc::new(ModelRegistry::new());
        let v1 = registry
            .load("m", &artifact(&[4, 6, 2]), Backend::Float)
            .unwrap();
        let collector = Arc::new(Collector::new());
        let fleet = Fleet::start(
            registry.clone(),
            small_config(3),
            Telemetry::new(vec![collector.clone()]),
        )
        .unwrap();
        for id in 1..=9u64 {
            let resp = fleet.infer_with_id(id, &v1, sample(id, 4), None).unwrap();
            assert_eq!(resp.version, 1);
        }
        // A kill before the cutover: the down replica is skipped, the
        // live ones get the route in replica-index order.
        let down = replica_name(1);
        fleet.kill(&down).unwrap();
        let v2 = registry
            .load("m", &artifact(&[4, 6, 2]), Backend::Float)
            .unwrap();
        let routed = fleet.install_cutover(&v2, 1).unwrap();
        let names: Vec<String> = routed.iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(names, vec![replica_name(0), replica_name(2)]);
        fleet.restart(&down).unwrap();
        // Requests still *name* v1; routed replicas execute v2. The
        // restarted replica holds no route, so ids it owns stay on v1 —
        // assert only on responses that crossed a routed replica.
        let mut rerouted = 0;
        for id in 10..=40u64 {
            let resp = fleet.infer_with_id(id, &v1, sample(id, 4), None).unwrap();
            assert!(resp.version == 1 || resp.version == 2);
            rerouted += u64::from(resp.version == 2);
        }
        assert!(rerouted > 0, "some ids must land on routed replicas");
        assert_eq!(collector.counter_total("fleet.cutovers"), 1);
        // Unknown target and zero window are typed errors. (The ghost
        // handle comes from a different registry this fleet never saw.)
        let ghost = ModelRegistry::new()
            .load("ghost", &artifact(&[4, 6, 2]), Backend::Float)
            .unwrap();
        assert!(matches!(
            fleet.install_cutover(&ghost, 1),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(matches!(
            fleet.install_cutover(&v2, 0),
            Err(ServeError::InvalidConfig(_))
        ));
        fleet.shutdown();
    }

    #[test]
    fn fault_plan_targeting_unknown_replica_is_rejected() {
        let registry = Arc::new(ModelRegistry::new());
        let plan = Arc::new(FaultPlan::parse("kill-replica:replica-9@5").unwrap());
        let err = Fleet::start_with_faults(
            registry,
            small_config(2),
            Arc::new(cbq_serve::SystemClock::new()),
            Telemetry::disabled(),
            Some(plan),
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }

    #[test]
    fn zero_replicas_is_invalid() {
        let registry = Arc::new(ModelRegistry::new());
        let err = Fleet::start(registry, small_config(0), Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }

    #[test]
    fn overload_spends_budget_and_exhaustion_fails_fast() {
        // One replica, one worker, single-slot queue, frozen manual
        // clock: a parked request keeps the queue full, so every
        // further call sheds deterministically.
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &artifact(&[4, 5, 2]), Backend::Float)
            .unwrap();
        let clock = cbq_serve::ManualClock::new();
        let mut config = small_config(1);
        config.server.policy = BatchPolicy {
            max_batch: 2,
            max_wait: Duration::from_millis(10),
            queue_capacity: 1,
        };
        config.server.workers = 1;
        config.retry = RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
        };
        config.budget_ratio = 0.0; // never refills
        config.budget_cap = 1; // exactly one stored retry token
        let fleet = Arc::new(
            Fleet::start_with(
                registry,
                config,
                Arc::new(clock.clone()),
                Telemetry::disabled(),
            )
            .unwrap(),
        );
        let parked = {
            let fleet = fleet.clone();
            let handle = handle.clone();
            std::thread::spawn(move || fleet.infer_with_id(1, &handle, sample(1, 4), None))
        };
        let replica = replica_name(0);
        while fleet.replica(&replica).unwrap().queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // First overloaded call spends the lone token, retries, sheds
        // again, and gives up on the attempt bound.
        let err = fleet
            .infer_with_id(2, &handle, sample(2, 4), None)
            .unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }));
        assert!(err.is_retryable(), "shed must classify as retryable");
        // Second call finds the budget empty and fails fast (one shed).
        let err = fleet
            .infer_with_id(3, &handle, sample(3, 4), None)
            .unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { .. }));
        clock.advance(Duration::from_millis(10));
        parked.join().unwrap().unwrap();
        let Ok(fleet) = Arc::try_unwrap(fleet) else {
            panic!("all clones joined");
        };
        let stats = fleet.shutdown();
        assert_eq!(stats.merged.completed, 1);
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.budget_exhausted, 1);
        assert_eq!(stats.failover, 0, "single replica cannot fail over");
    }
}
