//! Client-side retry discipline: bounded attempts, deterministic
//! exponential backoff on the injected clock, and a fleet-wide retry
//! budget so shed traffic cannot amplify into a retry storm.
//!
//! Backoff waits go through [`wait_backoff`], which sleeps on the
//! *logical* [`ServeClock`]: under a [`ManualClock`](cbq_serve::ManualClock)
//! the wait only elapses when a test advances the clock (short real
//! sleeps between re-checks, the same polling discipline as the
//! scheduler's `max_wait`), so tests never depend on wall-clock timing.

use cbq_serve::{Result, ServeClock, ServeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Polling granularity for manual-clock backoff waits. Correctness never
/// depends on this value — the wait completes only when the *logical*
/// deadline passes.
const MANUAL_POLL: Duration = Duration::from_millis(1);

/// Sub-token resolution of the [`RetryBudget`] bucket: deposits are
/// fractions of a token, spends are whole tokens.
const MILLI: u64 = 1000;

/// Retry/failover policy for one fleet client call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total admission attempts per request, the first included. `1`
    /// disables retries entirely.
    pub max_attempts: u32,
    /// Backoff before the first overload retry; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on any single backoff wait.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_micros(200),
            backoff_cap: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero attempts or a cap below
    /// the base.
    pub fn validate(&self) -> Result<()> {
        if self.max_attempts == 0 {
            return Err(ServeError::InvalidConfig(
                "retry max_attempts must be >= 1".into(),
            ));
        }
        if self.backoff_cap < self.backoff_base {
            return Err(ServeError::InvalidConfig(
                "retry backoff_cap must be >= backoff_base".into(),
            ));
        }
        Ok(())
    }

    /// Deterministic backoff before overload retry number `retry`
    /// (1-based): `base * 2^(retry-1)`, capped. `retry == 0` means no
    /// wait. No jitter by design — fleet behaviour must be a pure
    /// function of the request stream, and the failover cursor already
    /// de-correlates retries by sending them to different replicas.
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 || self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let doublings = retry - 1;
        let capped = self
            .backoff_base
            .checked_mul(1u32.checked_shl(doublings).unwrap_or(u32::MAX))
            .unwrap_or(self.backoff_cap);
        capped.min(self.backoff_cap)
    }
}

/// Blocks for `wait` of *logical* time on the injected clock.
pub(crate) fn wait_backoff(clock: &Arc<dyn ServeClock>, wait: Duration) {
    if wait.is_zero() {
        return;
    }
    if clock.is_manual() {
        let deadline = clock.now() + wait;
        while clock.now() < deadline {
            std::thread::sleep(MANUAL_POLL);
        }
    } else {
        std::thread::sleep(wait);
    }
}

/// A token bucket bounding how much of the offered load may be retries.
///
/// Every submitted request deposits `ratio` of a token (up to `cap`
/// whole tokens); every overload retry spends one whole token. When the
/// bucket is empty the client fails fast with the original
/// [`ServeError::Overloaded`] instead of piling more load onto a fleet
/// that is already shedding — the classic anti-retry-storm budget.
/// Failover after a replica *death* is deliberately budget-free: a
/// drained replica sheds no load, and dropping its traffic would violate
/// the zero-lost-requests drill gate.
#[derive(Debug)]
pub struct RetryBudget {
    millitokens: AtomicU64,
    cap_milli: u64,
    deposit_milli: u64,
}

impl RetryBudget {
    /// A budget allowing roughly `ratio` retries per request, bursting
    /// up to `cap` stored tokens. The bucket starts full so cold-start
    /// bursts can still retry.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a non-finite/negative ratio or
    /// zero cap.
    pub fn new(ratio: f64, cap: u64) -> Result<RetryBudget> {
        if !ratio.is_finite() || ratio < 0.0 {
            return Err(ServeError::InvalidConfig(
                "retry budget ratio must be finite and >= 0".into(),
            ));
        }
        if cap == 0 {
            return Err(ServeError::InvalidConfig(
                "retry budget cap must be >= 1".into(),
            ));
        }
        let cap_milli = cap.saturating_mul(MILLI);
        Ok(RetryBudget {
            millitokens: AtomicU64::new(cap_milli),
            cap_milli,
            deposit_milli: (ratio * MILLI as f64).round() as u64,
        })
    }

    /// Credits the budget for one submitted request.
    pub fn note_request(&self) {
        let deposit = self.deposit_milli;
        if deposit == 0 {
            return;
        }
        let _ = self
            .millitokens
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |m| {
                Some(m.saturating_add(deposit).min(self.cap_milli))
            });
    }

    /// Takes one retry token; `false` means the budget is exhausted and
    /// the caller must fail fast instead of retrying.
    pub fn try_spend(&self) -> bool {
        self.millitokens
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |m| m.checked_sub(MILLI))
            .is_ok()
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u64 {
        self.millitokens.load(Ordering::SeqCst) / MILLI
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_serve::ManualClock;

    #[test]
    fn policy_validation_and_defaults() {
        assert!(RetryPolicy::default().validate().is_ok());
        let zero = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(zero.validate().is_err());
        let inverted = RetryPolicy {
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        assert!(inverted.validate().is_err());
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_micros(350),
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_micros(100));
        assert_eq!(p.backoff(2), Duration::from_micros(200));
        assert_eq!(p.backoff(3), Duration::from_micros(350));
        assert_eq!(p.backoff(4), Duration::from_micros(350));
        // Huge retry ordinals saturate at the cap instead of overflowing.
        assert_eq!(p.backoff(64), Duration::from_micros(350));
    }

    #[test]
    fn budget_deposits_and_spends() {
        let b = RetryBudget::new(0.5, 2).unwrap();
        assert_eq!(b.available(), 2); // starts full
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "empty bucket must refuse");
        b.note_request(); // +0.5 tokens: still below a whole token
        assert!(!b.try_spend());
        b.note_request();
        assert!(b.try_spend());
        // Deposits clamp at the cap.
        for _ in 0..100 {
            b.note_request();
        }
        assert_eq!(b.available(), 2);
        assert!(RetryBudget::new(f64::NAN, 1).is_err());
        assert!(RetryBudget::new(-0.1, 1).is_err());
        assert!(RetryBudget::new(0.1, 0).is_err());
    }

    #[test]
    fn manual_clock_backoff_elapses_logically() {
        let clock = ManualClock::new();
        // Deadline already passed: returns without advancing real time
        // unboundedly. (The frozen-clock "does not elapse" direction is
        // covered by the server's wait_timeout test battery.)
        clock.advance(Duration::from_millis(5));
        let shared: Arc<dyn ServeClock> = Arc::new(clock.clone());
        let advancer = {
            let clock = clock.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                clock.advance(Duration::from_millis(3));
            })
        };
        let start = std::time::Instant::now();
        wait_backoff(&shared, Duration::from_millis(3));
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "backoff returned before the logical clock advanced"
        );
        advancer.join().unwrap();
        wait_backoff(&shared, Duration::ZERO); // no-op
    }
}
