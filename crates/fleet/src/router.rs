//! Deterministic request routing: a consistent-hash ring with virtual
//! nodes.
//!
//! Routing must be a pure function of `(ring membership, request id)` so
//! that every client — on any thread, at any worker count, before or
//! after a fault — sends a given request to the same replica. The ring
//! therefore hashes with fixed mixers (FNV-1a over replica names, a
//! splitmix64 finalizer over ids) instead of `std`'s randomly-seeded
//! `RandomState`.
//!
//! Consistent hashing keeps rebalancing minimal: a replica's virtual
//! nodes are derived from its *name only*, so removing a replica leaves
//! every surviving point exactly where it was — only keys the removed
//! replica owned fall through to the next point on the ring, and every
//! other key keeps its route. The proptest battery in
//! `tests/proptest_router.rs` pins both properties (balance within a
//! tolerance band, minimal key movement on removal).

use cbq_serve::{Result, ServeError};

/// Virtual nodes per replica when the caller doesn't override. More
/// vnodes tighten the balance band (relative spread shrinks like
/// `1/sqrt(vnodes)`) at the cost of a larger, still tiny, point table.
pub const DEFAULT_VNODES: usize = 128;

/// splitmix64 finalizer: a fixed, well-mixed 64-bit permutation.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes: the stable name hash seeding a replica's vnodes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of one virtual node: replica name hash mixed with the vnode
/// ordinal. Depends on the name alone — never on ring membership — which
/// is what makes removal movement minimal.
fn vnode_point(name_hash: u64, vnode: usize) -> u64 {
    splitmix64(name_hash ^ splitmix64(vnode as u64 + 1))
}

/// Hash of one request id onto the ring.
fn key_point(id: u64) -> u64 {
    splitmix64(id ^ 0xD6E8_FEB8_6659_FD93)
}

/// A deterministic consistent-hash ring over named replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    names: Vec<String>,
    /// `(point, replica index)` sorted by point (ties by index). A key
    /// routes to the first point at or after its own hash, wrapping.
    points: Vec<(u64, u32)>,
    vnodes: usize,
}

impl HashRing {
    /// Builds a ring over the given replica names.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an empty replica set, zero
    /// vnodes, or duplicate/empty names.
    pub fn new<S: AsRef<str>>(names: &[S], vnodes: usize) -> Result<HashRing> {
        if names.is_empty() {
            return Err(ServeError::InvalidConfig(
                "hash ring needs at least one replica".into(),
            ));
        }
        if vnodes == 0 {
            return Err(ServeError::InvalidConfig("vnodes must be >= 1".into()));
        }
        let names: Vec<String> = names.iter().map(|n| n.as_ref().to_string()).collect();
        for (i, n) in names.iter().enumerate() {
            if n.is_empty() {
                return Err(ServeError::InvalidConfig(
                    "replica names must be non-empty".into(),
                ));
            }
            if names[..i].contains(n) {
                return Err(ServeError::InvalidConfig(format!(
                    "duplicate replica name {n:?} in hash ring"
                )));
            }
        }
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (idx, name) in names.iter().enumerate() {
            let name_hash = fnv1a64(name.as_bytes());
            for v in 0..vnodes {
                points.push((vnode_point(name_hash, v), idx as u32));
            }
        }
        points.sort_unstable();
        Ok(HashRing {
            names,
            points,
            vnodes,
        })
    }

    /// Replica names in construction order (the index space of
    /// [`HashRing::route_index`]).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false — construction rejects empty rings.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Virtual nodes per replica.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Position of the first ring point at or after the key, wrapping.
    fn point_at(&self, id: u64) -> usize {
        let key = key_point(id);
        let pos = self.points.partition_point(|&(p, _)| p < key);
        if pos == self.points.len() {
            0
        } else {
            pos
        }
    }

    /// Index of the replica owning this request id.
    pub fn route_index(&self, id: u64) -> usize {
        self.points[self.point_at(id)].1 as usize
    }

    /// Name of the replica owning this request id.
    pub fn route(&self, id: u64) -> &str {
        &self.names[self.route_index(id)]
    }

    /// Failover order for a request: every replica index exactly once,
    /// starting at [`HashRing::route_index`] and continuing with the
    /// next *distinct* owners walking the ring. Deterministic, so
    /// retries from any client target replicas in the same sequence.
    pub fn failover_order(&self, id: u64) -> Vec<usize> {
        let start = self.point_at(id);
        let mut order = Vec::with_capacity(self.names.len());
        let mut seen = vec![false; self.names.len()];
        for offset in 0..self.points.len() {
            let idx = self.points[(start + offset) % self.points.len()].1 as usize;
            if !seen[idx] {
                seen[idx] = true;
                order.push(idx);
                if order.len() == self.names.len() {
                    break;
                }
            }
        }
        order
    }

    /// A new ring with one replica removed — what the routing layer
    /// would look like after permanently retiring a replica. Surviving
    /// replicas keep their exact vnode points, so only keys the removed
    /// replica owned change route (the minimal-movement property).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the name is unknown or it is
    /// the last replica.
    pub fn without(&self, name: &str) -> Result<HashRing> {
        if !self.names.iter().any(|n| n == name) {
            return Err(ServeError::InvalidConfig(format!(
                "unknown replica {name:?} in hash ring"
            )));
        }
        if self.names.len() == 1 {
            return Err(ServeError::InvalidConfig(
                "cannot remove the last replica from a hash ring".into(),
            ));
        }
        let survivors: Vec<&String> = self.names.iter().filter(|n| n.as_str() != name).collect();
        HashRing::new(&survivors, self.vnodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring3() -> HashRing {
        HashRing::new(&["r0", "r1", "r2"], DEFAULT_VNODES).unwrap()
    }

    #[test]
    fn construction_validates() {
        let empty: [&str; 0] = [];
        assert!(HashRing::new(&empty, 8).is_err());
        assert!(HashRing::new(&["a"], 0).is_err());
        assert!(HashRing::new(&["a", "a"], 8).is_err());
        assert!(HashRing::new(&["a", ""], 8).is_err());
        assert!(HashRing::new(&["a"], 8).is_ok());
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let a = ring3();
        let b = ring3();
        for id in 0..1000u64 {
            assert_eq!(a.route_index(id), b.route_index(id));
            assert!(a.route_index(id) < 3);
        }
        // Change detector: the ring is part of the fleet's deterministic
        // surface, so a hash-function change must be a conscious
        // decision. (Replay byte-identity does not depend on these exact
        // values, but cross-version comparability of routing does.)
        let sample: Vec<usize> = (0..8).map(|id| a.route_index(id)).collect();
        assert_eq!(sample, vec![2, 1, 0, 0, 1, 1, 0, 2]);
    }

    #[test]
    fn every_replica_owns_some_keys() {
        let ring = ring3();
        let mut counts = [0usize; 3];
        for id in 0..3000u64 {
            counts[ring.route_index(id)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "replica {i} owns no keys");
        }
    }

    #[test]
    fn failover_order_is_a_permutation_starting_at_the_route() {
        let ring = ring3();
        for id in 0..200u64 {
            let order = ring.failover_order(id);
            assert_eq!(order.len(), 3);
            assert_eq!(order[0], ring.route_index(id));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
        }
    }

    #[test]
    fn removal_only_moves_the_removed_replicas_keys() {
        let ring = ring3();
        let removed = "r1";
        let shrunk = ring.without(removed).unwrap();
        for id in 0..2000u64 {
            let before = ring.route(id);
            if before != removed {
                assert_eq!(shrunk.route(id), before, "key {id} moved unnecessarily");
            } else {
                assert_ne!(shrunk.route(id), removed);
            }
        }
        assert!(ring.without("nope").is_err());
        let one = HashRing::new(&["solo"], 4).unwrap();
        assert!(one.without("solo").is_err());
    }
}
