//! The replica transport boundary: how the fleet client reaches a
//! replica, and how a chaos drill kills and restarts one.
//!
//! [`Transport`] is deliberately narrow — admit one request, report
//! liveness/depth, kill (graceful drain), restart — so the in-process
//! [`LoopbackReplica`] used today and a future socket transport are
//! interchangeable to the routing/retry layer. Everything that makes the
//! fleet deterministic lives *above* this trait (routing, retry order,
//! replay canonicalisation) or *below* it (the server's bit-exact
//! execution); the transport only moves requests.
//!
//! Kill semantics are the serving contract's: a killed replica stops
//! admitting immediately (new submissions get
//! [`ServeError::ReplicaDown`]) but every already-admitted request is
//! drained to completion and its ticket stays redeemable — the drill's
//! zero-lost-requests gate leans on exactly this.

use cbq_serve::{
    ModelHandle, ModelRegistry, Result, ServeClock, ServeError, ServeStats, Server, ServerConfig,
    Ticket,
};
use cbq_telemetry::Telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One replica as seen by the fleet client.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Stable replica name (the routing identity).
    fn name(&self) -> &str;

    /// True while the replica admits requests.
    fn is_up(&self) -> bool;

    /// Waiting requests on the replica's admission queue (0 when down).
    fn queue_depth(&self) -> usize;

    /// Admits one request.
    ///
    /// # Errors
    ///
    /// [`ServeError::ReplicaDown`] when the replica is killed, otherwise
    /// the server's admission errors ([`ServeError::Overloaded`],
    /// [`ServeError::ShuttingDown`]) and request validation errors.
    fn submit(
        &self,
        id: u64,
        model: &ModelHandle,
        sample: Vec<f32>,
        label: Option<usize>,
    ) -> Result<Ticket>;

    /// Installs a seq-pinned cutover route on the replica: admissions of
    /// `to`'s model name from the replica's next `window`-aligned
    /// admission seq on execute against `to`. Returns the replica-local
    /// cutover seq (each replica numbers its own admissions).
    ///
    /// # Errors
    ///
    /// [`ServeError::ReplicaDown`] when the replica is killed,
    /// [`ServeError::UnknownModel`] for an unregistered target,
    /// [`ServeError::InvalidConfig`] for a zero window.
    fn install_route(&self, to: &ModelHandle, window: u64) -> Result<u64>;

    /// Kills the replica: admission stops immediately, admitted requests
    /// drain to completion, and the generation's statistics are returned
    /// (`None` when it was already down).
    fn kill(&self) -> Option<ServeStats>;

    /// Brings a killed replica back with a fresh server generation.
    /// A no-op when the replica is already up.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the stored server config is
    /// invalid (never for configs that started once).
    fn restart(&self) -> Result<()>;

    /// How many times the replica was restarted after a kill.
    fn restarts(&self) -> u64;

    /// Merged statistics across every *retired* generation. Complete
    /// only after a final [`Transport::kill`].
    fn lifetime_stats(&self) -> ServeStats;
}

/// In-process transport: the replica is a [`Server`] behind a slot that
/// [`LoopbackReplica::kill`] empties and [`LoopbackReplica::restart`]
/// refills.
///
/// All replicas of a fleet share one [`ModelRegistry`], so a response's
/// `model@version` — part of its canonical replay bytes — is identical
/// no matter which replica (or which post-restart generation) served it.
pub struct LoopbackReplica {
    name: String,
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    clock: Arc<dyn ServeClock>,
    telemetry: Telemetry,
    slot: RwLock<Option<Server>>,
    restarts: AtomicU64,
    retired: Mutex<ServeStats>,
}

impl std::fmt::Debug for LoopbackReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoopbackReplica")
            .field("name", &self.name)
            .field("up", &self.is_up())
            .field("restarts", &self.restarts())
            .finish_non_exhaustive()
    }
}

impl LoopbackReplica {
    /// Starts a replica serving from the shared registry.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an invalid server config.
    pub fn start(
        name: impl Into<String>,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
    ) -> Result<LoopbackReplica> {
        let server = Server::start_with(
            registry.clone(),
            config.clone(),
            clock.clone(),
            telemetry.clone(),
        )?;
        Ok(LoopbackReplica {
            name: name.into(),
            registry,
            config,
            clock,
            telemetry,
            slot: RwLock::new(Some(server)),
            restarts: AtomicU64::new(0),
            retired: Mutex::new(ServeStats::empty()),
        })
    }
}

impl Transport for LoopbackReplica {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_up(&self) -> bool {
        self.slot
            .read()
            .expect("replica slot lock poisoned")
            .is_some()
    }

    fn queue_depth(&self) -> usize {
        self.slot
            .read()
            .expect("replica slot lock poisoned")
            .as_ref()
            .map_or(0, |s| s.queue_depth())
    }

    fn submit(
        &self,
        id: u64,
        model: &ModelHandle,
        sample: Vec<f32>,
        label: Option<usize>,
    ) -> Result<Ticket> {
        let slot = self.slot.read().expect("replica slot lock poisoned");
        match slot.as_ref() {
            Some(server) => server.submit_request(id, model, sample, label),
            None => Err(ServeError::ReplicaDown {
                replica: self.name.clone(),
            }),
        }
    }

    fn install_route(&self, to: &ModelHandle, window: u64) -> Result<u64> {
        let slot = self.slot.read().expect("replica slot lock poisoned");
        match slot.as_ref() {
            Some(server) => server.install_route_at_boundary(to, window),
            None => Err(ServeError::ReplicaDown {
                replica: self.name.clone(),
            }),
        }
    }

    fn kill(&self) -> Option<ServeStats> {
        // Take the server out under the write lock (admission flips to
        // ReplicaDown at this instant), then drain it with no lock held
        // so concurrent submitters and waiters are never blocked on us.
        let server = self
            .slot
            .write()
            .expect("replica slot lock poisoned")
            .take()?;
        let stats = server.shutdown();
        self.retired
            .lock()
            .expect("replica stats lock poisoned")
            .merge(&stats);
        Some(stats)
    }

    fn restart(&self) -> Result<()> {
        let mut slot = self.slot.write().expect("replica slot lock poisoned");
        if slot.is_some() {
            return Ok(());
        }
        *slot = Some(Server::start_with(
            self.registry.clone(),
            self.config.clone(),
            self.clock.clone(),
            self.telemetry.clone(),
        )?);
        self.restarts.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    fn lifetime_stats(&self) -> ServeStats {
        self.retired
            .lock()
            .expect("replica stats lock poisoned")
            .clone()
    }
}
