//! Fixed-bucket latency histogram for hot paths.
//!
//! The serving runtime records one latency observation per request; a
//! lock-free-enough design matters less than a zero-allocation one, so the
//! histogram is a plain fixed array of power-of-two microsecond buckets.
//! Workers each own a private histogram and the server merges them at
//! report time — no contention on the request path.

/// Number of power-of-two buckets: bucket `i` counts observations with
/// `value_us < 2^i`, except the last which is a catch-all.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-size log2 histogram of microsecond values.
///
/// Recording is allocation-free; merging and quantile queries are cheap.
/// Bucket `i` spans `[2^(i-1), 2^i)` microseconds (bucket 0 is `[0, 1)`),
/// with the final bucket absorbing everything larger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    sum_us: u64,
    max_us: u64,
}

/// Fixed latency quantiles of one histogram, ready for JSON export.
///
/// Quantile bounds inherit [`Histogram::quantile_us`]'s bucket-upper-bound
/// semantics (conservative over-estimates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Observations summarized.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median bucket bound, microseconds.
    pub p50_us: u64,
    /// 95th-percentile bucket bound, microseconds.
    pub p95_us: u64,
    /// 99th-percentile bucket bound, microseconds.
    pub p99_us: u64,
    /// Largest observation, microseconds.
    pub max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn bucket_for(value_us: u64) -> usize {
        let idx = (64 - value_us.leading_zeros()) as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation in microseconds.
    pub fn record_us(&mut self, value_us: u64) {
        self.counts[Self::bucket_for(value_us)] += 1;
        self.total += 1;
        self.sum_us = self.sum_us.saturating_add(value_us);
        self.max_us = self.max_us.max(value_us);
    }

    /// Records a [`std::time::Duration`] observation.
    pub fn record(&mut self, d: std::time::Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean observation in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// Largest recorded observation in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Upper bound (exclusive, in microseconds) of the bucket containing
    /// the `q`-quantile observation, `q` in `[0, 1]`. Returns 0 when empty.
    ///
    /// The bound is a conservative over-estimate — the true observation
    /// lies somewhere inside the returned bucket.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }

    /// Raw bucket counts (bucket `i` = observations `< 2^i` µs).
    pub fn counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// The p50/p95/p99 summary of this histogram.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_us: self.mean_us(),
            p50_us: self.quantile_us(0.5),
            p95_us: self.quantile_us(0.95),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us(),
        }
    }

    /// Non-empty buckets as `(upper_bound_us, count)` pairs — compact form
    /// for JSON reports.
    pub fn sparse_counts(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.sparse_counts().is_empty());
    }

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.record_us(0); // bucket 0: < 1
        h.record_us(1); // bucket 1: < 2
        h.record_us(3); // bucket 2: < 4
        h.record_us(1000); // bucket 10: < 1024
        assert_eq!(h.count(), 4);
        let sparse = h.sparse_counts();
        assert_eq!(sparse, vec![(1, 1), (2, 1), (4, 1), (1024, 1)]);
        assert_eq!(h.max_us(), 1000);
    }

    #[test]
    fn quantiles_walk_the_cdf() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record_us(10); // bucket 4 (< 16)
        }
        for _ in 0..10 {
            h.record_us(5000); // bucket 13 (< 8192)
        }
        assert_eq!(h.quantile_us(0.5), 16);
        assert_eq!(h.quantile_us(0.9), 16);
        assert_eq!(h.quantile_us(0.95), 8192);
        assert_eq!(h.quantile_us(1.0), 8192);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_us(7);
        b.record_us(7);
        b.record_us(100_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 100_000);
        assert_eq!(a.counts()[3], 2); // 7 -> bucket 3 (< 8)
    }

    #[test]
    fn summary_matches_quantile_queries() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record_us(10);
        }
        h.record_us(100_000);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, h.quantile_us(0.5));
        assert_eq!(s.p95_us, h.quantile_us(0.95));
        assert_eq!(s.p99_us, h.quantile_us(0.99));
        assert_eq!(s.max_us, 100_000);
        assert!((s.mean_us - h.mean_us()).abs() < 1e-12);
        assert_eq!(Histogram::new().summary(), LatencySummary::default());
    }

    #[test]
    fn huge_values_land_in_last_bucket() {
        let mut h = Histogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.counts()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.quantile_us(1.0), 1u64 << (HISTOGRAM_BUCKETS - 1));
    }
}
