//! Sink trait and the two file-ish sinks: level-filtered stderr and a
//! JSONL trace writer. The in-memory [`crate::Collector`] lives in its own
//! module.

use crate::record::{Level, Record};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A destination for telemetry records. Sinks must be shareable across
/// threads; the [`crate::Telemetry`] handle holds them behind `Arc`.
pub trait Sink: Send + Sync {
    /// Consumes one record.
    fn record(&self, record: &Record);

    /// Flushes any buffered output. Default: no-op.
    fn flush(&self) {}
}

/// Human-readable stderr logger, filtered by [`Level`].
///
/// A record is printed when its level ([`crate::RecordKind::level`]) is at
/// or above the sink's threshold — i.e. `StderrSink::new(Level::Info)`
/// prints errors, warnings and info events but hides spans (`Debug`) and
/// counters/gauges (`Trace`).
#[derive(Debug)]
pub struct StderrSink {
    min_level: Level,
}

impl StderrSink {
    /// Creates a stderr sink showing records up to `min_level`.
    pub fn new(min_level: Level) -> Self {
        StderrSink { min_level }
    }

    /// Creates a stderr sink at the `CBQ_LOG` level (default `info`).
    pub fn from_env() -> Self {
        StderrSink::new(Level::from_env())
    }

    /// The configured threshold.
    pub fn level(&self) -> Level {
        self.min_level
    }
}

impl Sink for StderrSink {
    fn record(&self, record: &Record) {
        if record.kind.level() <= self.min_level {
            eprintln!("{}", record.to_human());
        }
    }
}

/// JSONL trace writer: one JSON object per record.
///
/// Lines follow the schema of [`Record::to_json`]. Records accumulate in
/// memory and the *whole* document is rewritten atomically (temp file +
/// fsync + rename via [`cbq_resilience::atomic_write_text`]) on every
/// [`Sink::flush`] and on drop — a killed process leaves the last
/// complete flush, never a torn half-line. The buffer lives for the
/// sink's lifetime, sized for the bounded traces the CLI, benches, and
/// tests emit.
pub struct JsonlSink {
    path: PathBuf,
    buffer: Mutex<JsonlBuffer>,
}

#[derive(Default)]
struct JsonlBuffer {
    lines: String,
    dirty: bool,
}

impl JsonlSink {
    /// Creates (truncates) the trace file at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory or file creation.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        cbq_resilience::atomic_write_text(&path, "").map_err(std::io::Error::other)?;
        Ok(JsonlSink {
            path,
            buffer: Mutex::new(JsonlBuffer::default()),
        })
    }

    /// The trace file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("path", &self.path)
            .finish()
    }
}

impl Sink for JsonlSink {
    fn record(&self, record: &Record) {
        if let Ok(mut buf) = self.buffer.lock() {
            buf.lines.push_str(&record.to_json());
            buf.lines.push('\n');
            buf.dirty = true;
        }
    }

    fn flush(&self) {
        if let Ok(mut buf) = self.buffer.lock() {
            if buf.dirty {
                let _ = cbq_resilience::atomic_write_text(&self.path, &buf.lines);
                buf.dirty = false;
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;

    fn rec(name: &str, kind: RecordKind) -> Record {
        Record {
            t_s: 0.5,
            span_id: 0,
            parent_id: 0,
            name: name.into(),
            kind,
            fields: vec![],
        }
    }

    #[test]
    fn stderr_sink_threshold() {
        let sink = StderrSink::new(Level::Info);
        assert_eq!(sink.level(), Level::Info);
        // Filtering itself is pure on RecordKind::level(); spot-check the
        // comparison used by `record`.
        assert!(RecordKind::Event { level: Level::Warn }.level() <= sink.level());
        assert!(RecordKind::SpanStart.level() > sink.level());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let dir = std::env::temp_dir().join("cbq_telemetry_test");
        let path = dir.join("trace_writes.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&rec("a", RecordKind::SpanStart));
        sink.record(&rec("b", RecordKind::Counter { delta: 1, total: 1 }));
        Sink::flush(&sink);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"a\""));
        assert!(lines[1].contains("\"total\":1"));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_creates_parent_dirs_and_flushes_on_drop() {
        let dir = std::env::temp_dir().join("cbq_telemetry_test/nested/deeper");
        let path = dir.join("trace_drop.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            assert_eq!(sink.path(), path.as_path());
            sink.record(&rec("x", RecordKind::Gauge { value: 1.5 }));
        } // dropped here -> flushed
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"value\":1.5"));
        std::fs::remove_file(&path).ok();
    }
}
