//! Shadow-scoring accounting for hot requantization.
//!
//! While a candidate model shadows the incumbent, every labeled
//! completion is scored twice — once by the incumbent (the response that
//! was actually served) and once, offline, by the candidate. The
//! [`ShadowWindow`] / [`ShadowSet`] counters mirror the design of
//! [`ClassWindow`](crate::ClassWindow) / [`WindowSet`](crate::WindowSet):
//! integer-only accumulation keyed by the *admission-derived* window
//! index, so sharding the stream across workers and merging — in any
//! completion order — reproduces the serial accounting bit for bit. The
//! cutover decision (`candidate - incumbent ≥ margin · labeled`) is then
//! a pure integer comparison, independent of scheduling.

/// Shadow accuracy counters for one sealed traffic window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowWindow {
    /// Window index (admission seq / window size).
    pub index: u64,
    labeled: u64,
    incumbent_correct: u64,
    candidate_correct: u64,
}

impl ShadowWindow {
    /// A fresh window with zeroed counters.
    pub fn new(index: u64) -> ShadowWindow {
        ShadowWindow {
            index,
            labeled: 0,
            incumbent_correct: 0,
            candidate_correct: 0,
        }
    }

    /// Records one labeled completion scored by both models.
    pub fn record(&mut self, incumbent_ok: bool, candidate_ok: bool) {
        self.labeled += 1;
        self.incumbent_correct += incumbent_ok as u64;
        self.candidate_correct += candidate_ok as u64;
    }

    /// Labeled completions scored in this window.
    pub fn labeled(&self) -> u64 {
        self.labeled
    }

    /// Completions the incumbent classified correctly.
    pub fn incumbent_correct(&self) -> u64 {
        self.incumbent_correct
    }

    /// Completions the candidate classified correctly.
    pub fn candidate_correct(&self) -> u64 {
        self.candidate_correct
    }

    /// Candidate-minus-incumbent correct count (may be negative).
    pub fn delta(&self) -> i64 {
        self.candidate_correct as i64 - self.incumbent_correct as i64
    }

    /// Folds another shard of the *same* window into this one. Integer
    /// addition, so merge order cannot change any bit.
    ///
    /// # Panics
    ///
    /// In debug builds when the indices disagree.
    pub fn merge(&mut self, other: &ShadowWindow) {
        debug_assert_eq!(self.index, other.index, "merging different windows");
        self.labeled += other.labeled;
        self.incumbent_correct += other.incumbent_correct;
        self.candidate_correct += other.candidate_correct;
    }
}

/// Shadow counters across the windows of one requantization job.
///
/// Windows are kept in a sorted map keyed by index, so iteration order —
/// and therefore every derived report — is independent of the order in
/// which completions arrived or shards merged.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShadowSet {
    windows: std::collections::BTreeMap<u64, ShadowWindow>,
}

impl ShadowSet {
    /// An empty set.
    pub fn new() -> ShadowSet {
        ShadowSet::default()
    }

    /// Records one dual-scored completion into its window.
    pub fn record(&mut self, window: u64, incumbent_ok: bool, candidate_ok: bool) {
        self.windows
            .entry(window)
            .or_insert_with(|| ShadowWindow::new(window))
            .record(incumbent_ok, candidate_ok);
    }

    /// Folds another set in, merging windows by index.
    pub fn merge(&mut self, other: &ShadowSet) {
        for (idx, w) in &other.windows {
            self.windows
                .entry(*idx)
                .and_modify(|mine| mine.merge(w))
                .or_insert_with(|| w.clone());
        }
    }

    /// Windows in ascending index order.
    pub fn windows(&self) -> impl Iterator<Item = &ShadowWindow> {
        self.windows.values()
    }

    /// Number of windows with at least one scored completion.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when nothing was scored yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Totals over all windows: `(labeled, incumbent_correct,
    /// candidate_correct)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for w in self.windows.values() {
            t.0 += w.labeled;
            t.1 += w.incumbent_correct;
            t.2 += w.candidate_correct;
        }
        t
    }

    /// Total candidate-minus-incumbent correct count.
    pub fn delta(&self) -> i64 {
        let (_, inc, cand) = self.totals();
        cand as i64 - inc as i64
    }

    /// The integer-exact cutover test: does the candidate beat the
    /// incumbent by at least `margin` (a fraction of labeled traffic)?
    /// With zero labeled completions the answer is always `false` — no
    /// evidence, no swap.
    pub fn beats_incumbent_by(&self, margin: f64) -> bool {
        let (labeled, _, _) = self.totals();
        if labeled == 0 {
            return false;
        }
        self.delta() as f64 >= margin * labeled as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_counts_and_delta() {
        let mut w = ShadowWindow::new(3);
        w.record(true, true);
        w.record(false, true);
        w.record(true, false);
        assert_eq!(w.labeled(), 3);
        assert_eq!(w.incumbent_correct(), 2);
        assert_eq!(w.candidate_correct(), 2);
        assert_eq!(w.delta(), 0);
    }

    #[test]
    fn merge_is_integer_addition() {
        let mut a = ShadowWindow::new(0);
        a.record(true, false);
        let mut b = ShadowWindow::new(0);
        b.record(false, true);
        b.record(true, true);
        a.merge(&b);
        assert_eq!(a.labeled(), 3);
        assert_eq!(a.incumbent_correct(), 2);
        assert_eq!(a.candidate_correct(), 2);
    }

    #[test]
    fn set_totals_and_decision() {
        let mut s = ShadowSet::new();
        s.record(5, false, true);
        s.record(6, false, true);
        s.record(5, true, true);
        assert_eq!(s.len(), 2);
        assert_eq!(s.totals(), (3, 1, 3));
        assert_eq!(s.delta(), 2);
        assert!(s.beats_incumbent_by(0.5)); // 2 >= 0.5 * 3
        assert!(!s.beats_incumbent_by(0.7)); // 2 < 0.7 * 3
        let idx: Vec<u64> = s.windows().map(|w| w.index).collect();
        assert_eq!(idx, vec![5, 6]);
    }

    #[test]
    fn empty_set_never_cuts_over() {
        let s = ShadowSet::new();
        assert!(!s.beats_incumbent_by(0.0));
        assert!(s.is_empty());
    }

    #[test]
    fn set_merge_order_independent() {
        let events = [(0u64, true, false), (1, false, true), (0, true, true)];
        let mut serial = ShadowSet::new();
        for &(w, i, c) in &events {
            serial.record(w, i, c);
        }
        let mut a = ShadowSet::new();
        a.record(0, true, false);
        let mut b = ShadowSet::new();
        b.record(1, false, true);
        b.record(0, true, true);
        let mut ba = ShadowSet::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ba, serial);
    }
}
