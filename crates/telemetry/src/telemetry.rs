//! The [`Telemetry`] handle: span guards, counters, gauges, events, and
//! sink fan-out.

use crate::clock::{Clock, SystemClock};
use crate::record::{FieldValue, Level, Record, RecordKind};
use crate::sinks::{Sink, StderrSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Inner {
    clock: Arc<dyn Clock>,
    /// Clock reading at handle creation; record timestamps are relative
    /// to it, so a shared clock can predate the handle.
    origin: Duration,
    sinks: Vec<Arc<dyn Sink>>,
    counters: Mutex<HashMap<String, u64>>,
    /// Stack of currently open span ids (innermost last). The pipeline is
    /// single-threaded, so a plain stack models nesting faithfully; under
    /// concurrent use parents degrade gracefully to "most recently opened
    /// span" without affecting durations or counts.
    stack: Mutex<Vec<u64>>,
    next_id: AtomicU64,
}

/// A cheaply clonable handle that fans telemetry out to its sinks.
///
/// A handle with no sinks ([`Telemetry::disabled`]) skips all work, so
/// instrumented code can call it unconditionally.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("sinks", &inner.sinks.len())
                .finish(),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// Creates a handle fanning out to the given sinks, timestamped by
    /// the system clock.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Telemetry {
        Telemetry::with_clock(sinks, Arc::new(SystemClock::new()))
    }

    /// Creates a handle whose timestamps and span durations come from an
    /// injected [`Clock`]. Under a [`crate::ManualClock`] every emitted
    /// record carries *logical* time, so trace bytes are reproducible.
    pub fn with_clock(sinks: Vec<Arc<dyn Sink>>, clock: Arc<dyn Clock>) -> Telemetry {
        if sinks.is_empty() {
            return Telemetry::disabled();
        }
        let origin = clock.now();
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock,
                origin,
                sinks,
                counters: Mutex::new(HashMap::new()),
                stack: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// A no-op handle: every call returns immediately.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle logging human-readable output to stderr at the `CBQ_LOG`
    /// level (default `info`) — the drop-in replacement for ad-hoc
    /// `eprintln!` progress lines.
    pub fn from_env() -> Telemetry {
        Telemetry::new(vec![Arc::new(StderrSink::from_env())])
    }

    /// True when at least one sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Seconds since this handle was created (0 when disabled), on the
    /// handle's clock.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map(|i| i.clock.now().saturating_sub(i.origin))
            .unwrap_or(Duration::ZERO)
    }

    fn emit(&self, span_id: u64, name: &str, kind: RecordKind, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        let parent_id = {
            let stack = inner.stack.lock().ok();
            stack
                .as_ref()
                .and_then(|s| {
                    // The record's own span is on the stack while it is
                    // open; its parent is the entry underneath.
                    let top = s.last().copied();
                    if top == Some(span_id) && span_id != 0 {
                        s.iter().rev().nth(1).copied()
                    } else {
                        top
                    }
                })
                .unwrap_or(0)
        };
        let record = Record {
            t_s: inner.clock.now().saturating_sub(inner.origin).as_secs_f64(),
            span_id,
            parent_id,
            name: name.to_string(),
            kind,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        for sink in &inner.sinks {
            sink.record(&record);
        }
    }

    /// Opens a nested timed span. The returned guard emits a `SpanEnd`
    /// record with the measured duration when dropped (or on
    /// [`SpanGuard::end`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_with(name, &[])
    }

    /// Opens a span carrying structured fields on its start record.
    pub fn span_with(&self, name: &str, fields: &[(&str, FieldValue)]) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                tel: Telemetry::disabled(),
                id: 0,
                name: String::new(),
                start: Duration::ZERO,
                done: true,
            };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut stack) = inner.stack.lock() {
            stack.push(id);
        }
        self.emit(id, name, RecordKind::SpanStart, fields);
        SpanGuard {
            tel: self.clone(),
            id,
            name: name.to_string(),
            start: self.elapsed(),
            done: false,
        }
    }

    /// Adds `delta` to a monotonic counter, returning the new total.
    pub fn counter_add(&self, name: &str, delta: u64) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let total = {
            let mut counters = match inner.counters.lock() {
                Ok(c) => c,
                Err(_) => return 0,
            };
            let entry = counters.entry(name.to_string()).or_insert(0);
            *entry += delta;
            *entry
        };
        self.emit(0, name, RecordKind::Counter { delta, total }, &[]);
        total
    }

    /// Current total of a counter (0 when unknown or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .as_ref()
            .and_then(|i| {
                i.counters
                    .lock()
                    .ok()
                    .map(|c| c.get(name).copied().unwrap_or(0))
            })
            .unwrap_or(0)
    }

    /// Records an instantaneous value.
    pub fn gauge(&self, name: &str, value: f64) {
        self.emit(0, name, RecordKind::Gauge { value }, &[]);
    }

    /// Emits a structured event at the given level.
    pub fn event(&self, level: Level, name: &str, fields: &[(&str, FieldValue)]) {
        self.emit(0, name, RecordKind::Event { level }, fields);
    }

    /// [`Telemetry::event`] at `Level::Info`.
    pub fn info(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.event(Level::Info, name, fields);
    }

    /// [`Telemetry::event`] at `Level::Debug`.
    pub fn debug(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.event(Level::Debug, name, fields);
    }

    /// [`Telemetry::event`] at `Level::Trace`.
    pub fn trace(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.event(Level::Trace, name, fields);
    }

    /// [`Telemetry::event`] at `Level::Warn`.
    pub fn warn(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.event(Level::Warn, name, fields);
    }

    /// Flushes every sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }

    fn close_span(&self, id: u64, name: &str, start: Duration) {
        let Some(inner) = &self.inner else { return };
        let duration_s = self.elapsed().saturating_sub(start).as_secs_f64();
        // Emit before popping so the record's parent resolves correctly
        // (emit treats a top-of-stack == own id specially).
        self.emit(id, name, RecordKind::SpanEnd { duration_s }, &[]);
        if let Ok(mut stack) = inner.stack.lock() {
            if let Some(pos) = stack.iter().rposition(|&s| s == id) {
                stack.truncate(pos);
            }
        }
    }
}

/// Guard for an open span; closing it (drop or [`SpanGuard::end`]) emits
/// the `SpanEnd` record with the measured duration.
#[derive(Debug)]
pub struct SpanGuard {
    tel: Telemetry,
    id: u64,
    name: String,
    start: Duration,
    done: bool,
}

impl SpanGuard {
    /// Closes the span now (equivalent to dropping it).
    pub fn end(mut self) {
        self.finish();
    }

    /// The span's id (0 for a disabled handle).
    pub fn id(&self) -> u64 {
        self.id
    }

    fn finish(&mut self) {
        if !self.done {
            self.done = true;
            self.tel.close_span(self.id, &self.name, self.start);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::record::RecordKind;

    fn collected() -> (Telemetry, Arc<Collector>) {
        let c = Arc::new(Collector::new());
        (Telemetry::new(vec![c.clone()]), c)
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let g = tel.span("x");
        assert_eq!(g.id(), 0);
        drop(g);
        assert_eq!(tel.counter_add("c", 5), 0);
        assert_eq!(tel.counter("c"), 0);
        tel.gauge("g", 1.0);
        tel.info("e", &[]);
        tel.flush();
        assert_eq!(tel.elapsed_s(), 0.0);
        assert_eq!(format!("{tel:?}"), "Telemetry(disabled)");
    }

    #[test]
    fn empty_sink_list_is_disabled() {
        assert!(!Telemetry::new(vec![]).is_enabled());
    }

    #[test]
    fn span_emits_start_and_end_with_duration() {
        let (tel, c) = collected();
        {
            let _g = tel.span("phase");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let recs = c.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, RecordKind::SpanStart);
        assert_eq!(recs[0].name, "phase");
        match recs[1].kind {
            RecordKind::SpanEnd { duration_s } => {
                assert!(duration_s >= 0.004, "duration {duration_s}")
            }
            ref k => panic!("expected SpanEnd, got {k:?}"),
        }
        assert_eq!(recs[0].span_id, recs[1].span_id);
    }

    #[test]
    fn nested_spans_record_parents() {
        let (tel, c) = collected();
        {
            let outer = tel.span("outer");
            let outer_id = outer.id();
            {
                let inner = tel.span("inner");
                assert_ne!(inner.id(), outer_id);
                tel.counter_add("k", 1);
            }
            let _ = outer;
        }
        let recs = c.records();
        // outer start, inner start, counter, inner end, outer end
        assert_eq!(recs.len(), 5);
        let outer_id = recs[0].span_id;
        assert_eq!(recs[0].parent_id, 0, "outer span is a root");
        assert_eq!(recs[1].parent_id, outer_id, "inner nests under outer");
        assert_eq!(recs[2].parent_id, recs[1].span_id, "counter inside inner");
        assert_eq!(recs[3].parent_id, outer_id, "inner end under outer");
        assert_eq!(recs[4].parent_id, 0, "outer end at root");
    }

    #[test]
    fn explicit_end_closes_once() {
        let (tel, c) = collected();
        let g = tel.span("s");
        g.end();
        assert_eq!(c.span_count("s"), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counters_accumulate_and_report_totals() {
        let (tel, c) = collected();
        assert_eq!(tel.counter_add("probe.forward_passes", 1), 1);
        assert_eq!(tel.counter_add("probe.forward_passes", 2), 3);
        assert_eq!(tel.counter("probe.forward_passes"), 3);
        assert_eq!(tel.counter("unknown"), 0);
        assert_eq!(c.counter_total("probe.forward_passes"), 3);
    }

    #[test]
    fn fan_out_reaches_every_sink() {
        let a = Arc::new(Collector::new());
        let b = Arc::new(Collector::new());
        let tel = Telemetry::new(vec![a.clone(), b.clone()]);
        tel.gauge("g", 4.0);
        {
            let _s = tel.span("s");
        }
        for c in [&a, &b] {
            assert_eq!(c.gauge_last("g"), Some(4.0));
            assert_eq!(c.span_count("s"), 1);
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn events_carry_levels_and_fields() {
        let (tel, c) = collected();
        tel.warn("w", &[("reason", "test".into())]);
        tel.debug("d", &[("epoch", 3usize.into())]);
        tel.trace("t", &[]);
        tel.info("i", &[]);
        assert_eq!(c.events_at_most(Level::Warn).len(), 1);
        assert_eq!(c.events_at_most(Level::Info).len(), 2);
        assert_eq!(c.events_at_most(Level::Trace).len(), 4);
        let w = &c.events("w")[0];
        assert_eq!(w.fields[0].0, "reason");
    }

    #[test]
    fn out_of_order_guard_drop_is_tolerated() {
        let (tel, c) = collected();
        let outer = tel.span("outer");
        let inner = tel.span("inner");
        drop(outer); // dropped before inner: stack pops down to outer
        drop(inner); // closing a no-longer-stacked span still records
        assert_eq!(c.span_count("outer"), 1);
        assert_eq!(c.span_count("inner"), 1);
    }

    #[test]
    fn manual_clock_drives_timestamps_and_span_durations() {
        use crate::clock::ManualClock;
        let run = || {
            let clock = ManualClock::new();
            let c = Arc::new(Collector::new());
            let tel = Telemetry::with_clock(vec![c.clone()], Arc::new(clock.clone()));
            clock.advance(std::time::Duration::from_millis(250));
            let g = tel.span("phase");
            clock.advance(std::time::Duration::from_millis(750));
            g.end();
            tel.gauge("v", 1.0);
            c.records().iter().map(|r| r.to_json()).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "logical-clock records are byte-stable");
        assert!(a[0].contains("\"t\":0.25"), "{}", a[0]);
        assert!(a[1].contains("\"secs\":0.75"), "{}", a[1]);
        assert!(a[2].contains("\"t\":1"), "{}", a[2]);
    }

    #[test]
    fn clones_share_state() {
        let (tel, c) = collected();
        let tel2 = tel.clone();
        tel.counter_add("x", 1);
        tel2.counter_add("x", 1);
        assert_eq!(tel.counter("x"), 2);
        assert_eq!(c.counter_total("x"), 2);
    }
}
