//! Minimal JSON encoding helpers, so the crate needs no JSON dependency.
//!
//! Only *encoding* is needed: the trace writer, the run report, and the
//! serve-side metrics snapshots emit JSON; nothing in the telemetry layer
//! parses it back. The encoders are deterministic (fixed formatting, no
//! locale), which is what makes byte-identical traces possible.

/// Encodes a string as a JSON string literal (with surrounding quotes).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Encodes a finite float as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Trim floats that are exactly integral to keep traces compact.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(2.0), "2");
        assert_eq!(number(2.5), "2.5");
        assert_eq!(number(-0.125), "-0.125");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
