//! Windowed per-class traffic counters with order-independent merges.
//!
//! The serving runtime needs to observe *which classes it actually sees*
//! (the paper allocates bit-widths by class importance, so the observed
//! class mix is the production signal for re-scoring). Observations are
//! grouped into fixed-size **windows by admission sequence**, not by
//! time or completion order: request `seq` belongs to window
//! `seq / window_size`. Admission order is fixed by the submitting
//! client, so window *membership* never depends on worker scheduling —
//! and every per-window quantity below is either an integer counter
//! (addition commutes) or a float derived from merged integers in
//! ascending class order. Sealed-window snapshots are therefore
//! bit-identical at any worker count.

use crate::histogram::Histogram;
use std::collections::BTreeMap;

/// Per-class counters for one admission-sequence window.
///
/// All mutation is integer-only; derived rates ([`ClassWindow::mix`],
/// [`ClassWindow::accuracy`]) are computed from the final integers in
/// ascending class order, so merge order can never change their bits.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassWindow {
    /// Window index (`admission_seq / window_size`).
    pub index: u64,
    /// Requests completed successfully in this window.
    pub completed: u64,
    /// Requests that failed execution in this window.
    pub errors: u64,
    /// Latency distribution of the window's completed requests.
    pub latency: Histogram,
    predicted: Vec<u64>,
    labeled: Vec<u64>,
    correct: Vec<u64>,
}

impl ClassWindow {
    /// Creates an empty window over `classes` classes.
    pub fn new(index: u64, classes: usize) -> ClassWindow {
        ClassWindow {
            index,
            completed: 0,
            errors: 0,
            latency: Histogram::new(),
            predicted: vec![0; classes],
            labeled: vec![0; classes],
            correct: vec![0; classes],
        }
    }

    /// Number of classes tracked.
    pub fn classes(&self) -> usize {
        self.predicted.len()
    }

    /// Records one completed request: the predicted class, the true
    /// label when the caller supplied one (shadow/replay traffic), and
    /// the request latency in microseconds. Out-of-range classes are
    /// clamped into the last bucket rather than dropped, so totals
    /// always reconcile with `completed`.
    pub fn record(&mut self, predicted: usize, label: Option<usize>, latency_us: u64) {
        let last = self.predicted.len().saturating_sub(1);
        self.predicted[predicted.min(last)] += 1;
        if let Some(label) = label {
            let l = label.min(last);
            self.labeled[l] += 1;
            if label == predicted {
                self.correct[l] += 1;
            }
        }
        self.completed += 1;
        self.latency.record_us(latency_us);
    }

    /// Records one request that failed execution (counted so the window
    /// still seals when every member has resolved).
    pub fn record_error(&mut self) {
        self.errors += 1;
    }

    /// Requests resolved (completed or errored).
    pub fn resolved(&self) -> u64 {
        self.completed + self.errors
    }

    /// Per-class predicted-traffic counts.
    pub fn predicted(&self) -> &[u64] {
        &self.predicted
    }

    /// Per-class labeled-request counts.
    pub fn labeled(&self) -> &[u64] {
        &self.labeled
    }

    /// Per-class correct-prediction counts.
    pub fn correct(&self) -> &[u64] {
        &self.correct
    }

    /// Merges another window's counters into this one. Integer adds
    /// only: merging in any order yields identical state.
    ///
    /// # Panics
    ///
    /// When class counts differ.
    pub fn merge(&mut self, other: &ClassWindow) {
        assert_eq!(
            self.predicted.len(),
            other.predicted.len(),
            "merging windows over different class counts"
        );
        self.completed += other.completed;
        self.errors += other.errors;
        self.latency.merge(&other.latency);
        for (a, b) in self.predicted.iter_mut().zip(&other.predicted) {
            *a += b;
        }
        for (a, b) in self.labeled.iter_mut().zip(&other.labeled) {
            *a += b;
        }
        for (a, b) in self.correct.iter_mut().zip(&other.correct) {
            *a += b;
        }
    }

    /// Observed class mix: predicted counts normalized to probabilities,
    /// ascending class order (all zeros when the window is empty).
    pub fn mix(&self) -> Vec<f64> {
        let n = self.completed;
        self.predicted
            .iter()
            .map(|&c| if n == 0 { 0.0 } else { c as f64 / n as f64 })
            .collect()
    }

    /// Per-class accuracy over labeled requests, `None` when the window
    /// saw no labels. Classes with no labeled requests report 0.
    pub fn accuracy(&self) -> Option<Vec<f64>> {
        if self.labeled.iter().all(|&n| n == 0) {
            return None;
        }
        Some(
            self.correct
                .iter()
                .zip(&self.labeled)
                .map(|(&c, &n)| if n == 0 { 0.0 } else { c as f64 / n as f64 })
                .collect(),
        )
    }

    /// Overall accuracy over labeled requests (`None` without labels).
    pub fn overall_accuracy(&self) -> Option<f64> {
        let labeled: u64 = self.labeled.iter().sum();
        if labeled == 0 {
            return None;
        }
        let correct: u64 = self.correct.iter().sum();
        Some(correct as f64 / labeled as f64)
    }
}

/// Windows keyed by admission sequence, sealed strictly in index order.
///
/// A window **seals** once all `window_size` of its members have
/// resolved (completed or errored) and every earlier window has sealed;
/// [`WindowSet::finalize`] seals trailing partial windows at drain.
/// Because membership is fixed at admission and sealing is in-order,
/// the sealed prefix at any point is a pure function of the completed
/// request set — independent of worker count or completion order.
#[derive(Debug)]
pub struct WindowSet {
    classes: usize,
    window_size: u64,
    open: BTreeMap<u64, ClassWindow>,
    sealed: Vec<ClassWindow>,
    next_seal: u64,
}

impl WindowSet {
    /// Creates an empty set of `window_size`-request windows over
    /// `classes` classes. Both must be nonzero.
    ///
    /// # Panics
    ///
    /// On a zero class count or window size.
    pub fn new(classes: usize, window_size: u64) -> WindowSet {
        assert!(classes > 0, "WindowSet needs at least one class");
        assert!(window_size > 0, "WindowSet needs a nonzero window size");
        WindowSet {
            classes,
            window_size,
            open: BTreeMap::new(),
            sealed: Vec::new(),
            next_seal: 0,
        }
    }

    /// Requests per window.
    pub fn window_size(&self) -> u64 {
        self.window_size
    }

    /// Number of classes tracked.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The window index an admission sequence number belongs to.
    pub fn window_of(&self, seq: u64) -> u64 {
        seq / self.window_size
    }

    /// Records a completed request into its window and returns the
    /// indices of any windows that sealed as a result (ascending).
    pub fn record(
        &mut self,
        seq: u64,
        predicted: usize,
        label: Option<usize>,
        latency_us: u64,
    ) -> Vec<u64> {
        let w = self.window_of(seq);
        let classes = self.classes;
        self.open
            .entry(w)
            .or_insert_with(|| ClassWindow::new(w, classes))
            .record(predicted, label, latency_us);
        self.try_seal()
    }

    /// Records a failed request into its window (same sealing rules).
    pub fn record_error(&mut self, seq: u64) -> Vec<u64> {
        let w = self.window_of(seq);
        let classes = self.classes;
        self.open
            .entry(w)
            .or_insert_with(|| ClassWindow::new(w, classes))
            .record_error();
        self.try_seal()
    }

    fn try_seal(&mut self) -> Vec<u64> {
        let mut sealed_now = Vec::new();
        while let Some(w) = self.open.get(&self.next_seal) {
            if w.resolved() < self.window_size {
                break;
            }
            let w = self.open.remove(&self.next_seal).expect("checked above");
            sealed_now.push(w.index);
            self.sealed.push(w);
            self.next_seal += 1;
        }
        sealed_now
    }

    /// Seals every remaining window (trailing partials included) in
    /// index order — called at drain, when no more requests can arrive.
    /// Returns the newly sealed indices.
    pub fn finalize(&mut self) -> Vec<u64> {
        let mut sealed_now = Vec::new();
        while let Some((&idx, _)) = self.open.iter().next() {
            let w = self.open.remove(&idx).expect("key from iterator");
            sealed_now.push(w.index);
            self.sealed.push(w);
        }
        self.next_seal = self.sealed.last().map(|w| w.index + 1).unwrap_or(0);
        sealed_now
    }

    /// Sealed windows, ascending index.
    pub fn sealed(&self) -> &[ClassWindow] {
        &self.sealed
    }

    /// Merge of all sealed windows (index 0): the cumulative view a
    /// snapshot reports. Ascending fixed-order merge of commutative
    /// integer counters — bit-identical however the windows were fed.
    pub fn cumulative(&self) -> ClassWindow {
        let mut total = ClassWindow::new(0, self.classes);
        for w in &self.sealed {
            total.merge(w);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_mix_and_accuracy() {
        let mut w = ClassWindow::new(0, 3);
        w.record(0, Some(0), 10);
        w.record(0, Some(1), 10);
        w.record(2, Some(2), 20);
        w.record(2, None, 20);
        assert_eq!(w.completed, 4);
        assert_eq!(w.predicted(), &[2, 0, 2]);
        assert_eq!(w.labeled(), &[1, 1, 1]);
        assert_eq!(w.correct(), &[1, 0, 1]);
        assert_eq!(w.mix(), vec![0.5, 0.0, 0.5]);
        assert_eq!(w.accuracy().unwrap(), vec![1.0, 0.0, 1.0]);
        assert_eq!(w.overall_accuracy().unwrap(), 2.0 / 3.0);
    }

    #[test]
    fn unlabeled_window_has_no_accuracy() {
        let mut w = ClassWindow::new(0, 2);
        w.record(1, None, 5);
        assert_eq!(w.accuracy(), None);
        assert_eq!(w.overall_accuracy(), None);
        assert_eq!(w.mix(), vec![0.0, 1.0]);
    }

    #[test]
    fn out_of_range_classes_clamp_into_last_bucket() {
        let mut w = ClassWindow::new(0, 2);
        w.record(9, Some(9), 1);
        assert_eq!(w.predicted(), &[0, 1]);
        assert_eq!(w.labeled(), &[0, 1]);
        assert_eq!(w.completed, 1);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = ClassWindow::new(0, 3);
        let mut b = ClassWindow::new(0, 3);
        a.record(0, Some(0), 10);
        a.record(1, Some(0), 100);
        b.record(2, None, 1000);
        b.record_error();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.resolved(), 4);
    }

    #[test]
    fn windows_seal_in_order_when_full() {
        let mut set = WindowSet::new(2, 4);
        // Window 1 fills before window 0: nothing seals until 0 does.
        for seq in 4..8 {
            assert!(
                set.record(seq, 0, None, 1).is_empty(),
                "seq {seq} sealed early"
            );
        }
        for seq in 0..3 {
            assert!(
                set.record(seq, 1, None, 1).is_empty(),
                "seq {seq} sealed early"
            );
        }
        let sealed = set.record(3, 1, None, 1);
        assert_eq!(sealed, vec![0, 1], "both seal once the gap closes");
        assert_eq!(set.sealed().len(), 2);
        assert_eq!(set.sealed()[0].index, 0);
        assert_eq!(set.sealed()[0].predicted(), &[0, 4]);
        assert_eq!(set.sealed()[1].predicted(), &[4, 0]);
    }

    #[test]
    fn errors_count_toward_sealing() {
        let mut set = WindowSet::new(2, 2);
        assert!(set.record(0, 0, None, 1).is_empty());
        let sealed = set.record_error(1);
        assert_eq!(sealed, vec![0]);
        assert_eq!(set.sealed()[0].completed, 1);
        assert_eq!(set.sealed()[0].errors, 1);
    }

    #[test]
    fn finalize_seals_trailing_partials() {
        let mut set = WindowSet::new(2, 4);
        for seq in 0..4 {
            set.record(seq, (seq % 2) as usize, None, 1);
        }
        set.record(5, 1, Some(1), 1); // window 1, partial

        // Recording used sequences 0..4 then 5 — window 1 holds one entry.
        let sealed = set.finalize();
        assert_eq!(sealed, vec![1]);
        assert_eq!(set.sealed().len(), 2);
        let total = set.cumulative();
        assert_eq!(total.completed, 5);
    }

    #[test]
    fn interleaved_feeds_match_serial_accumulation() {
        // Simulate two "workers" splitting the same completion set; the
        // sealed windows must equal a serial single-feed run.
        let completions: Vec<(u64, usize, Option<usize>, u64)> = (0..12)
            .map(|seq| (seq, (seq % 3) as usize, Some((seq % 2) as usize), seq * 7))
            .collect();
        let mut serial = WindowSet::new(3, 4);
        for &(seq, p, l, us) in &completions {
            serial.record(seq, p, l, us);
        }
        let mut split = WindowSet::new(3, 4);
        // Feed evens first, then odds — a maximally reordered schedule.
        for &(seq, p, l, us) in completions.iter().filter(|c| c.0 % 2 == 0) {
            split.record(seq, p, l, us);
        }
        for &(seq, p, l, us) in completions.iter().filter(|c| c.0 % 2 == 1) {
            split.record(seq, p, l, us);
        }
        assert_eq!(serial.sealed(), split.sealed());
        assert_eq!(serial.cumulative(), split.cumulative());
    }
}
