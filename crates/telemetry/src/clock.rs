//! Injectable monotonic time source shared by telemetry and the serving
//! runtime.
//!
//! Timestamps (record `t_s`, span durations, request stage timings) are
//! routed through a [`Clock`] trait: production uses the monotonic
//! [`SystemClock`], tests drive a [`ManualClock`] they advance explicitly
//! — emitted traces then depend on *logical* time only, so their bytes
//! are reproducible no matter how threads race.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source consulted for every timestamp.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;

    /// Whether time only moves when a test advances it. Manual clocks
    /// make timed waits poll at a short real interval instead of
    /// sleeping out the (never-elapsing) wall timeout.
    fn is_manual(&self) -> bool {
        false
    }
}

/// Production clock: monotonic time since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock anchored at "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Test clock: time is an atomic nanosecond counter that only moves via
/// [`ManualClock::advance`]. Clone handles share the same timeline.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at t=0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn is_manual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        let peer = c.clone();
        c.advance(Duration::from_millis(5));
        assert_eq!(peer.now(), Duration::from_millis(5));
        assert!(peer.is_manual());
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_manual());
    }
}
