//! Class-mix drift detection over sealed windows.
//!
//! The paper's premise is that bit-widths should track class importance;
//! when the *served* class distribution walks away from the mix the
//! deployment was calibrated against, the arrangement is stale and the
//! search should re-run (ROADMAP: hot requantization). The detector
//! compares each sealed [`ClassWindow`]'s observed mix against a
//! registered baseline with two complementary statistics:
//!
//! - **L1 distance** `Σ |p_obs(c) − p_base(c)|` — scale-free, bounded
//!   `[0, 2]`, robust for coarse shifts;
//! - **Pearson chi-square** `Σ (n_obs(c) − n·p_base(c))² / (n·p_base(c))`
//!   — sample-size aware, sensitive to shifts concentrated in rare
//!   classes (classes with zero baseline mass are excluded; the L1 term
//!   still catches mass appearing there).
//!
//! Everything is computed from merged integer counters in ascending
//! class order, so a [`DriftReport`] is bit-identical at any worker
//! count.

use crate::classes::ClassWindow;

/// Thresholds for flagging a window as drifted.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftConfig {
    /// Flag when the L1 distance to the baseline exceeds this.
    pub l1_threshold: f64,
    /// Flag when the chi-square statistic exceeds this.
    pub chi2_threshold: f64,
    /// Windows with fewer completed requests than this are skipped
    /// (never flagged): tiny samples make both statistics noise.
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            l1_threshold: 0.25,
            chi2_threshold: 20.0,
            min_samples: 16,
        }
    }
}

/// Verdict for one window: the statistics and whether they crossed a
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Index of the evaluated window.
    pub window: u64,
    /// Completed requests the statistics were computed over.
    pub samples: u64,
    /// L1 distance between observed and baseline mix.
    pub l1: f64,
    /// Pearson chi-square of observed counts vs baseline expectation.
    pub chi2: f64,
    /// True when the window was too small to evaluate.
    pub skipped: bool,
    /// True when either statistic crossed its threshold.
    pub flagged: bool,
}

/// Compares sealed windows against a baseline class mix.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    baseline: Vec<f64>,
    config: DriftConfig,
}

impl DriftDetector {
    /// Creates a detector from baseline class weights (any nonnegative
    /// finite weights; they are normalized to probabilities). Returns
    /// `None` when the weights are empty, negative, non-finite, or sum
    /// to zero.
    pub fn new(baseline: &[f64], config: DriftConfig) -> Option<DriftDetector> {
        if baseline.is_empty() || baseline.iter().any(|&p| !p.is_finite() || p < 0.0) {
            return None;
        }
        let sum: f64 = baseline.iter().sum();
        if sum <= 0.0 {
            return None;
        }
        Some(DriftDetector {
            baseline: baseline.iter().map(|&p| p / sum).collect(),
            config,
        })
    }

    /// The normalized baseline mix.
    pub fn baseline(&self) -> &[f64] {
        &self.baseline
    }

    /// The active thresholds.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Evaluates one sealed window. Class counts beyond the baseline's
    /// length fold into its last class (mirroring [`ClassWindow`]'s
    /// clamping); a window smaller than `min_samples` comes back
    /// `skipped` and never flagged.
    pub fn evaluate(&self, window: &ClassWindow) -> DriftReport {
        let n = window.completed;
        let mut observed = vec![0u64; self.baseline.len()];
        let last = self.baseline.len() - 1;
        for (c, &count) in window.predicted().iter().enumerate() {
            observed[c.min(last)] += count;
        }
        let mut l1 = 0.0;
        let mut chi2 = 0.0;
        for (c, &base_p) in self.baseline.iter().enumerate() {
            let obs_p = if n == 0 {
                0.0
            } else {
                observed[c] as f64 / n as f64
            };
            l1 += (obs_p - base_p).abs();
            if base_p > 0.0 && n > 0 {
                let expected = n as f64 * base_p;
                let diff = observed[c] as f64 - expected;
                chi2 += diff * diff / expected;
            }
        }
        let skipped = n < self.config.min_samples;
        DriftReport {
            window: window.index,
            samples: n,
            l1,
            chi2,
            skipped,
            flagged: !skipped
                && (l1 > self.config.l1_threshold || chi2 > self.config.chi2_threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_with(index: u64, counts: &[u64]) -> ClassWindow {
        let mut w = ClassWindow::new(index, counts.len());
        for (c, &n) in counts.iter().enumerate() {
            for _ in 0..n {
                w.record(c, None, 1);
            }
        }
        w
    }

    #[test]
    fn rejects_degenerate_baselines() {
        let cfg = DriftConfig::default();
        assert!(DriftDetector::new(&[], cfg.clone()).is_none());
        assert!(DriftDetector::new(&[0.0, 0.0], cfg.clone()).is_none());
        assert!(DriftDetector::new(&[0.5, -0.1], cfg.clone()).is_none());
        assert!(DriftDetector::new(&[f64::NAN, 1.0], cfg).is_none());
    }

    #[test]
    fn baseline_weights_are_normalized() {
        let d = DriftDetector::new(&[2.0, 6.0], DriftConfig::default()).unwrap();
        assert_eq!(d.baseline(), &[0.25, 0.75]);
    }

    #[test]
    fn matching_mix_is_not_flagged() {
        let d = DriftDetector::new(&[0.5, 0.25, 0.25], DriftConfig::default()).unwrap();
        let r = d.evaluate(&window_with(3, &[32, 16, 16]));
        assert_eq!(r.window, 3);
        assert_eq!(r.samples, 64);
        assert_eq!(r.l1, 0.0);
        assert_eq!(r.chi2, 0.0);
        assert!(!r.flagged && !r.skipped);
    }

    #[test]
    fn shifted_mix_is_flagged() {
        let d = DriftDetector::new(&[0.5, 0.25, 0.25], DriftConfig::default()).unwrap();
        let r = d.evaluate(&window_with(0, &[4, 4, 56]));
        assert!(r.l1 > 0.9, "l1 {}", r.l1);
        assert!(r.chi2 > 20.0, "chi2 {}", r.chi2);
        assert!(r.flagged);
    }

    #[test]
    fn small_windows_are_skipped_not_flagged() {
        let d = DriftDetector::new(&[0.5, 0.5], DriftConfig::default()).unwrap();
        let r = d.evaluate(&window_with(0, &[3, 0]));
        assert!(r.skipped);
        assert!(!r.flagged);
        assert!(r.l1 > 0.0, "statistics are still reported");
    }

    #[test]
    fn mass_on_zero_baseline_class_shows_up_in_l1() {
        let cfg = DriftConfig {
            min_samples: 1,
            ..DriftConfig::default()
        };
        let d = DriftDetector::new(&[1.0, 0.0], cfg).unwrap();
        let r = d.evaluate(&window_with(0, &[0, 32]));
        assert_eq!(r.l1, 2.0);
        assert!(r.chi2.is_finite(), "zero-baseline class excluded from chi2");
        assert!(r.flagged);
    }

    #[test]
    fn chi2_catches_rare_class_shifts_l1_misses() {
        // 2% of mass moved onto a 1% class: small L1, large chi2.
        let d = DriftDetector::new(&[0.99, 0.01], DriftConfig::default()).unwrap();
        let mut w = window_with(0, &[970, 30]);
        let r = d.evaluate(&w);
        assert!(r.l1 < 0.25, "l1 {}", r.l1);
        assert!(r.chi2 > 20.0, "chi2 {}", r.chi2);
        assert!(r.flagged);
        // And the same window at the baseline mix is quiet.
        w = window_with(0, &[990, 10]);
        assert!(!d.evaluate(&w).flagged);
    }
}
