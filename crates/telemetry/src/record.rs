//! The record types every sink consumes: levels, field values, and the
//! tagged [`Record`] itself.

use crate::json;
use std::fmt;

/// Verbosity level of an event, ordered from most to least severe.
///
/// `Error < Warn < Info < Debug < Trace`: a sink configured at `Info`
/// shows `Error`, `Warn` and `Info` records and hides the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// The run cannot proceed or produced a wrong result.
    Error,
    /// Something surprising that does not stop the run.
    Warn,
    /// Per-phase progress (the default visibility).
    Info,
    /// Per-epoch / per-threshold detail.
    Debug,
    /// Per-probe / per-batch firehose.
    Trace,
}

impl Level {
    /// Parses a level name, case-insensitively. Accepts the first letter
    /// as an abbreviation (`e`, `w`, `i`, `d`, `t`).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "e" => Some(Level::Error),
            "warn" | "warning" | "w" => Some(Level::Warn),
            "info" | "i" => Some(Level::Info),
            "debug" | "d" => Some(Level::Debug),
            "trace" | "t" => Some(Level::Trace),
            _ => None,
        }
    }

    /// The level configured by the `CBQ_LOG` environment variable,
    /// defaulting to [`Level::Info`] when unset or unparseable.
    pub fn from_env() -> Level {
        std::env::var("CBQ_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
            .unwrap_or(Level::Info)
    }

    /// Fixed-width lowercase name (for aligned stderr output).
    pub fn name(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured field value attached to a record.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Floating-point value (accuracies, losses, bit averages).
    F64(f64),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (counts, epochs, indices).
    U64(u64),
    /// String value.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl FieldValue {
    /// JSON encoding of the value.
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::F64(v) => json::number(*v),
            FieldValue::I64(v) => v.to_string(),
            FieldValue::U64(v) => v.to_string(),
            FieldValue::Str(s) => json::string(s),
            FieldValue::Bool(b) => b.to_string(),
        }
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::F64(v) => write!(f, "{v:.4}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Str(s) => f.write_str(s),
            FieldValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(v as f64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<u8> for FieldValue {
    fn from(v: u8) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// What kind of measurement a [`Record`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordKind {
    /// A span opened.
    SpanStart,
    /// A span closed after `duration_s` seconds.
    SpanEnd {
        /// Measured wall-time of the span in seconds.
        duration_s: f64,
    },
    /// A monotonic counter moved by `delta` to `total`.
    Counter {
        /// Increment applied by this record.
        delta: u64,
        /// Running total after the increment.
        total: u64,
    },
    /// An instantaneous value.
    Gauge {
        /// The observed value.
        value: f64,
    },
    /// A structured log event at the given level.
    Event {
        /// Verbosity of the event.
        level: Level,
    },
}

impl RecordKind {
    /// Short tag used in JSON output and stderr rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd { .. } => "span_end",
            RecordKind::Counter { .. } => "counter",
            RecordKind::Gauge { .. } => "gauge",
            RecordKind::Event { .. } => "event",
        }
    }

    /// The level a sink should filter this record at. Events carry their
    /// own level; spans render at `Debug`; counters and gauges at `Trace`.
    pub fn level(&self) -> Level {
        match self {
            RecordKind::Event { level } => *level,
            RecordKind::SpanStart | RecordKind::SpanEnd { .. } => Level::Debug,
            RecordKind::Counter { .. } | RecordKind::Gauge { .. } => Level::Trace,
        }
    }
}

/// One telemetry record, fanned out to every sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Seconds since the owning [`crate::Telemetry`] handle was created
    /// (monotonic clock).
    pub t_s: f64,
    /// Span id for span records, 0 otherwise.
    pub span_id: u64,
    /// Id of the enclosing span at emission time, 0 at the root.
    pub parent_id: u64,
    /// Record name (span name, counter name, gauge name, event name).
    pub name: String,
    /// The measurement.
    pub kind: RecordKind,
    /// Structured fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Record {
    /// Encodes the record as a single-line JSON object (no trailing
    /// newline) — the JSONL trace format.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        out.push_str(&format!("\"t\":{}", json::number(self.t_s)));
        out.push_str(&format!(",\"kind\":{}", json::string(self.kind.tag())));
        out.push_str(&format!(",\"name\":{}", json::string(&self.name)));
        if self.span_id != 0 {
            out.push_str(&format!(",\"span\":{}", self.span_id));
        }
        if self.parent_id != 0 {
            out.push_str(&format!(",\"parent\":{}", self.parent_id));
        }
        match &self.kind {
            RecordKind::SpanEnd { duration_s } => {
                out.push_str(&format!(",\"secs\":{}", json::number(*duration_s)));
            }
            RecordKind::Counter { delta, total } => {
                out.push_str(&format!(",\"delta\":{delta},\"total\":{total}"));
            }
            RecordKind::Gauge { value } => {
                out.push_str(&format!(",\"value\":{}", json::number(*value)));
            }
            RecordKind::Event { level } => {
                out.push_str(&format!(",\"level\":{}", json::string(level.name())));
            }
            RecordKind::SpanStart => {}
        }
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json::string(k));
                out.push(':');
                out.push_str(&v.to_json());
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Human-readable one-line rendering (the stderr format).
    pub fn to_human(&self) -> String {
        let mut out = format!(
            "[{:>5}] {:>9.3}s {}",
            self.kind.level(),
            self.t_s,
            self.name
        );
        match &self.kind {
            RecordKind::SpanStart => out.push_str(" {"),
            RecordKind::SpanEnd { duration_s } => {
                out.push_str(&format!(" }} ({duration_s:.3}s)"));
            }
            RecordKind::Counter { delta, total } => {
                out.push_str(&format!(" +{delta} = {total}"));
            }
            RecordKind::Gauge { value } => out.push_str(&format!(" = {value:.4}")),
            RecordKind::Event { .. } => {}
        }
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("t"), Some(Level::Trace));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(Level::Warn.to_string(), "warn");
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(1.5f32), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from(-2i64).to_json(), "-2");
    }

    #[test]
    fn record_json_shape() {
        let r = Record {
            t_s: 1.25,
            span_id: 7,
            parent_id: 3,
            name: "search.phase1".into(),
            kind: RecordKind::SpanEnd { duration_s: 0.5 },
            fields: vec![("avg_bits".into(), 2.0f64.into())],
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"kind\":\"span_end\""), "{j}");
        assert!(j.contains("\"name\":\"search.phase1\""), "{j}");
        assert!(j.contains("\"span\":7"), "{j}");
        assert!(j.contains("\"parent\":3"), "{j}");
        assert!(j.contains("\"secs\":0.5"), "{j}");
        assert!(j.contains("\"fields\":{\"avg_bits\":2"), "{j}");
    }

    #[test]
    fn record_json_escapes_strings() {
        let r = Record {
            t_s: 0.0,
            span_id: 0,
            parent_id: 0,
            name: "we\"ird\nname".into(),
            kind: RecordKind::Event { level: Level::Info },
            fields: vec![],
        };
        let j = r.to_json();
        assert!(j.contains("we\\\"ird\\nname"), "{j}");
    }

    #[test]
    fn counter_json_has_delta_and_total() {
        let r = Record {
            t_s: 0.0,
            span_id: 0,
            parent_id: 0,
            name: "probe.forward_passes".into(),
            kind: RecordKind::Counter { delta: 2, total: 9 },
            fields: vec![],
        };
        assert!(r.to_json().contains("\"delta\":2,\"total\":9"));
        assert!(r.to_human().contains("+2 = 9"));
    }

    #[test]
    fn implicit_levels() {
        assert_eq!(RecordKind::SpanStart.level(), Level::Debug);
        assert_eq!(RecordKind::Gauge { value: 0.0 }.level(), Level::Trace);
        assert_eq!(
            RecordKind::Event { level: Level::Warn }.level(),
            Level::Warn
        );
    }
}
