#![warn(missing_docs)]

//! # cbq-telemetry — observability for the CBQ pipeline
//!
//! A lightweight telemetry layer (std plus the crash-safe writers in
//! `cbq-resilience`) used by every phase of the class-based quantization
//! pipeline: importance scoring (paper §III-A/B), threshold search
//! (§III-C), KD refining (§III-D), the trainers, the serving runtime, and
//! the figure/bench harness.
//!
//! The model is deliberately small:
//!
//! - a [`Telemetry`] handle (cheap to clone, thread-safe) owns a set of
//!   [`Sink`]s and fans every [`Record`] out to all of them;
//! - [`Telemetry::span`] opens a **nested timed span** whose guard emits a
//!   `SpanEnd` record with the measured duration on drop;
//! - [`Telemetry::counter_add`] bumps a **monotonic counter** (e.g.
//!   `probe.forward_passes`) and records both the delta and the running
//!   total;
//! - [`Telemetry::gauge`] records an instantaneous value (e.g.
//!   `search.avg_bits` as it converges toward the bit target `B`);
//! - [`Telemetry::event`] emits a level-filtered **structured event** with
//!   arbitrary key/value fields.
//!
//! Three sinks ship with the crate:
//!
//! - [`StderrSink`] — human-readable, level-filtered via the `CBQ_LOG`
//!   environment variable (`error|warn|info|debug|trace`, default `info`);
//! - [`JsonlSink`] — one JSON object per record, for machine-readable
//!   traces (`--trace-out` on the `cbq` CLI);
//! - [`Collector`] — in-memory, for asserting emitted telemetry in tests.
//!
//! [`RunReport`] aggregates a record stream into per-phase wall-time and
//! final counter totals — the `results/run_report.json` artifact the bench
//! harness writes after each experiment.
//!
//! For serving, the crate adds the deterministic per-class machinery:
//! an injectable [`Clock`] (so traces are byte-stable under a
//! [`ManualClock`]), windowed per-class traffic/accuracy counters
//! ([`ClassWindow`] / [`WindowSet`], sealed in admission order so
//! snapshots are bit-identical at any worker count), and a
//! [`DriftDetector`] comparing each sealed window's class mix against a
//! calibration baseline, plus the [`ShadowWindow`] / [`ShadowSet`]
//! counters that score a requantization candidate against the incumbent
//! on the same labeled traffic before any cutover.
//!
//! # Example
//!
//! ```
//! use cbq_telemetry::{Collector, Level, Telemetry};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(Collector::new());
//! let tel = Telemetry::new(vec![collector.clone()]);
//! {
//!     let _outer = tel.span("search");
//!     let _inner = tel.span("search.phase1");
//!     tel.counter_add("probe.forward_passes", 1);
//!     tel.gauge("search.avg_bits", 2.5);
//!     tel.event(Level::Info, "search.probe", &[("accuracy", 0.91.into())]);
//! }
//! assert_eq!(collector.counter_total("probe.forward_passes"), 1);
//! assert!(collector.span_total_secs("search.phase1") >= 0.0);
//! ```

mod classes;
mod clock;
mod collector;
mod drift;
mod histogram;
pub mod json;
mod record;
mod report;
mod shadow;
mod sinks;
mod telemetry;

pub use classes::{ClassWindow, WindowSet};
pub use clock::{Clock, ManualClock, SystemClock};
pub use collector::Collector;
pub use drift::{DriftConfig, DriftDetector, DriftReport};
pub use histogram::{Histogram, LatencySummary, HISTOGRAM_BUCKETS};
pub use record::{FieldValue, Level, Record, RecordKind};
pub use report::{PhaseTiming, RunReport};
pub use shadow::{ShadowSet, ShadowWindow};
pub use sinks::{JsonlSink, Sink, StderrSink};
pub use telemetry::{SpanGuard, Telemetry};
