//! In-memory sink for tests and for building [`crate::RunReport`]s.

use crate::record::{Level, Record, RecordKind};
use crate::sinks::Sink;
use std::sync::Mutex;

/// A sink that retains every record in memory.
///
/// Keep an `Arc<Collector>` alongside the [`crate::Telemetry`] handle and
/// query it after the instrumented code ran:
///
/// ```
/// use cbq_telemetry::{Collector, Telemetry};
/// use std::sync::Arc;
///
/// let collector = Arc::new(Collector::new());
/// let tel = Telemetry::new(vec![collector.clone()]);
/// tel.counter_add("probe.forward_passes", 3);
/// assert_eq!(collector.counter_total("probe.forward_passes"), 3);
/// ```
#[derive(Debug, Default)]
pub struct Collector {
    records: Mutex<Vec<Record>>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// A snapshot of every record seen so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().map(|r| r.clone()).unwrap_or_default()
    }

    /// Number of records seen.
    pub fn len(&self) -> usize {
        self.records.lock().map(|r| r.len()).unwrap_or(0)
    }

    /// True when no record was seen.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every retained record.
    pub fn clear(&self) {
        if let Ok(mut r) = self.records.lock() {
            r.clear();
        }
    }

    /// Final running total of a counter (0 when never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.records()
            .iter()
            .rev()
            .find_map(|r| match &r.kind {
                RecordKind::Counter { total, .. } if r.name == name => Some(*total),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// Final running totals of every counter seen, sorted by name — the
    /// deterministic aggregate view the fleet tier uses to merge and
    /// report per-replica counters (`fleet.retries`, `fleet.shed`,
    /// `fleet.failover`, `fleet.replica_restarts`, `serve.*`, …).
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        let mut totals: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for r in self.records() {
            if let RecordKind::Counter { total, .. } = r.kind {
                totals.insert(r.name.clone(), total);
            }
        }
        totals.into_iter().collect()
    }

    /// Durations of every completed span with this name, in emission
    /// order.
    pub fn span_durations(&self, name: &str) -> Vec<f64> {
        self.records()
            .iter()
            .filter_map(|r| match &r.kind {
                RecordKind::SpanEnd { duration_s } if r.name == name => Some(*duration_s),
                _ => None,
            })
            .collect()
    }

    /// Total wall-time across completed spans with this name.
    pub fn span_total_secs(&self, name: &str) -> f64 {
        self.span_durations(name).iter().sum()
    }

    /// Number of completed spans with this name.
    pub fn span_count(&self, name: &str) -> usize {
        self.span_durations(name).len()
    }

    /// True when at least one span with this name completed.
    pub fn has_span(&self, name: &str) -> bool {
        self.span_count(name) > 0
    }

    /// Last observed value of a gauge.
    pub fn gauge_last(&self, name: &str) -> Option<f64> {
        self.records().iter().rev().find_map(|r| match &r.kind {
            RecordKind::Gauge { value } if r.name == name => Some(*value),
            _ => None,
        })
    }

    /// Every event with the given name.
    pub fn events(&self, name: &str) -> Vec<Record> {
        self.records()
            .into_iter()
            .filter(|r| matches!(r.kind, RecordKind::Event { .. }) && r.name == name)
            .collect()
    }

    /// Every event at or above (more severe than) the given level.
    pub fn events_at_most(&self, level: Level) -> Vec<Record> {
        self.records()
            .into_iter()
            .filter(|r| match r.kind {
                RecordKind::Event { level: l } => l <= level,
                _ => false,
            })
            .collect()
    }
}

impl Sink for Collector {
    fn record(&self, record: &Record) {
        if let Ok(mut r) = self.records.lock() {
            r.push(record.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(c: &Collector, name: &str, kind: RecordKind) {
        c.record(&Record {
            t_s: 0.0,
            span_id: 0,
            parent_id: 0,
            name: name.into(),
            kind,
            fields: vec![],
        });
    }

    #[test]
    fn counter_total_reads_last_record() {
        let c = Collector::new();
        assert_eq!(c.counter_total("x"), 0);
        push(&c, "x", RecordKind::Counter { delta: 1, total: 1 });
        push(&c, "y", RecordKind::Counter { delta: 5, total: 5 });
        push(&c, "x", RecordKind::Counter { delta: 2, total: 3 });
        assert_eq!(c.counter_total("x"), 3);
        assert_eq!(c.counter_total("y"), 5);
        // Aggregate view: last total per counter, sorted by name.
        assert_eq!(
            c.counter_totals(),
            vec![("x".to_string(), 3), ("y".to_string(), 5)]
        );
        assert!(Collector::new().counter_totals().is_empty());
    }

    #[test]
    fn span_queries() {
        let c = Collector::new();
        assert!(!c.has_span("s"));
        push(&c, "s", RecordKind::SpanStart);
        push(&c, "s", RecordKind::SpanEnd { duration_s: 0.25 });
        push(&c, "s", RecordKind::SpanEnd { duration_s: 0.5 });
        assert_eq!(c.span_count("s"), 2);
        assert!((c.span_total_secs("s") - 0.75).abs() < 1e-12);
        assert!(c.has_span("s"));
    }

    #[test]
    fn gauge_and_events() {
        let c = Collector::new();
        push(&c, "g", RecordKind::Gauge { value: 1.0 });
        push(&c, "g", RecordKind::Gauge { value: 2.0 });
        assert_eq!(c.gauge_last("g"), Some(2.0));
        assert_eq!(c.gauge_last("h"), None);
        push(&c, "e", RecordKind::Event { level: Level::Warn });
        push(
            &c,
            "e",
            RecordKind::Event {
                level: Level::Trace,
            },
        );
        assert_eq!(c.events("e").len(), 2);
        assert_eq!(c.events_at_most(Level::Info).len(), 1);
    }

    #[test]
    fn clear_and_len() {
        let c = Collector::new();
        push(&c, "a", RecordKind::SpanStart);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }
}
