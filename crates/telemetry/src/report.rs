//! Machine-readable per-run reports aggregated from a record stream.
//!
//! The bench harness builds a [`RunReport`] from the [`crate::Collector`]
//! attached to each experiment and writes it to `results/run_report.json`
//! (plus a `BENCH_observability.json` perf snapshot), so every future
//! performance PR can diff per-phase wall-time and counter totals.

use crate::histogram::{Histogram, LatencySummary};
use crate::json;
use crate::record::{Record, RecordKind};
use std::path::Path;

/// Aggregate timing of one span name ("phase").
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Span name (e.g. `search.phase1`).
    pub name: String,
    /// Completed spans with this name.
    pub count: usize,
    /// Total wall-time across those spans, seconds.
    pub total_s: f64,
}

/// Per-phase wall-time, counter totals and final gauge values of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Run label (cache key, CLI invocation, test name, …).
    pub label: String,
    /// Timestamp of the last record, seconds from telemetry start — the
    /// run's observed wall-time.
    pub total_s: f64,
    /// Aggregated span timings, in order of first completion.
    pub phases: Vec<PhaseTiming>,
    /// Final counter totals, in order of first increment.
    pub counters: Vec<(String, u64)>,
    /// Last observed value per gauge, in order of first observation.
    pub gauges: Vec<(String, f64)>,
    /// Named latency quantile summaries registered via
    /// [`RunReport::add_latency`] (e.g. serve request latency and its
    /// per-stage breakdown), in registration order.
    pub latencies: Vec<(String, LatencySummary)>,
}

impl RunReport {
    /// Aggregates a record stream (as captured by a
    /// [`crate::Collector`]) into a report.
    pub fn from_records(label: impl Into<String>, records: &[Record]) -> RunReport {
        let mut report = RunReport {
            label: label.into(),
            ..RunReport::default()
        };
        for rec in records {
            report.total_s = report.total_s.max(rec.t_s);
            match &rec.kind {
                RecordKind::SpanEnd { duration_s } => {
                    match report.phases.iter_mut().find(|p| p.name == rec.name) {
                        Some(p) => {
                            p.count += 1;
                            p.total_s += duration_s;
                        }
                        None => report.phases.push(PhaseTiming {
                            name: rec.name.clone(),
                            count: 1,
                            total_s: *duration_s,
                        }),
                    }
                }
                RecordKind::Counter { total, .. } => {
                    match report.counters.iter_mut().find(|(n, _)| *n == rec.name) {
                        Some((_, t)) => *t = *total,
                        None => report.counters.push((rec.name.clone(), *total)),
                    }
                }
                RecordKind::Gauge { value } => {
                    match report.gauges.iter_mut().find(|(n, _)| *n == rec.name) {
                        Some((_, v)) => *v = *value,
                        None => report.gauges.push((rec.name.clone(), *value)),
                    }
                }
                RecordKind::SpanStart | RecordKind::Event { .. } => {}
            }
        }
        report
    }

    /// Total wall-time of one phase (0 when absent).
    pub fn phase_secs(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.total_s)
            .unwrap_or(0.0)
    }

    /// Registers a named latency distribution; its p50/p95/p99 summary
    /// is exported in the JSON document's `"latency"` section. A repeated
    /// name overwrites the previous summary.
    pub fn add_latency(&mut self, name: impl Into<String>, histogram: &Histogram) {
        let name = name.into();
        let summary = histogram.summary();
        match self.latencies.iter_mut().find(|(n, _)| *n == name) {
            Some((_, s)) => *s = summary,
            None => self.latencies.push((name, summary)),
        }
    }

    /// A registered latency summary by name.
    pub fn latency(&self, name: &str) -> Option<&LatencySummary> {
        self.latencies
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// Final total of one counter (0 when absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
            .unwrap_or(0)
    }

    /// Pretty-printed JSON document for the report.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str(&format!("  \"label\": {},\n", json::string(&self.label)));
        out.push_str(&format!(
            "  \"total_seconds\": {},\n",
            json::number(self.total_s)
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"count\": {}, \"seconds\": {}}}{}\n",
                json::string(&p.name),
                p.count,
                json::number(p.total_s),
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": {");
        for (i, (n, t)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(n), t));
        }
        if !self.counters.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("},\n");
        out.push_str("  \"gauges\": {");
        for (i, (n, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json::string(n), json::number(*v)));
        }
        if !self.gauges.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("},\n");
        out.push_str("  \"latency\": {");
        for (i, (n, s)) in self.latencies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                json::string(n),
                s.count,
                json::number(s.mean_us),
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.max_us
            ));
        }
        if !self.latencies.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n");
        out.push_str("}\n");
        out
    }

    /// Writes the JSON report to `path`, creating parent directories.
    ///
    /// The write goes through [`cbq_resilience::atomic_write_text`]
    /// (sibling temp file + fsync + rename), so readers never observe a
    /// torn report — a killed process leaves the previous complete file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from directory or file creation.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        cbq_resilience::atomic_write_text(path, &self.to_json()).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Level, Record};

    fn rec(t_s: f64, name: &str, kind: RecordKind) -> Record {
        Record {
            t_s,
            span_id: 0,
            parent_id: 0,
            name: name.into(),
            kind,
            fields: vec![],
        }
    }

    fn sample() -> Vec<Record> {
        vec![
            rec(0.0, "search", RecordKind::SpanStart),
            rec(
                0.1,
                "search.phase1",
                RecordKind::SpanEnd { duration_s: 0.1 },
            ),
            rec(
                0.2,
                "search.phase1",
                RecordKind::SpanEnd { duration_s: 0.3 },
            ),
            rec(0.5, "search", RecordKind::SpanEnd { duration_s: 0.5 }),
            rec(
                0.3,
                "probe.forward_passes",
                RecordKind::Counter { delta: 1, total: 1 },
            ),
            rec(
                0.4,
                "probe.forward_passes",
                RecordKind::Counter { delta: 1, total: 2 },
            ),
            rec(0.4, "search.avg_bits", RecordKind::Gauge { value: 3.0 }),
            rec(0.5, "search.avg_bits", RecordKind::Gauge { value: 2.0 }),
            rec(0.5, "note", RecordKind::Event { level: Level::Info }),
        ]
    }

    #[test]
    fn aggregates_phases_counters_gauges() {
        let r = RunReport::from_records("test", &sample());
        assert_eq!(r.label, "test");
        assert!((r.total_s - 0.5).abs() < 1e-12);
        assert_eq!(r.phases.len(), 2);
        let p1 = &r.phases[0];
        assert_eq!(p1.name, "search.phase1");
        assert_eq!(p1.count, 2);
        assert!((p1.total_s - 0.4).abs() < 1e-12);
        assert!((r.phase_secs("search") - 0.5).abs() < 1e-12);
        assert_eq!(r.phase_secs("missing"), 0.0);
        assert_eq!(r.counter_total("probe.forward_passes"), 2);
        assert_eq!(r.counter_total("missing"), 0);
        assert_eq!(r.gauges, vec![("search.avg_bits".to_string(), 2.0)]);
    }

    #[test]
    fn json_document_shape() {
        let r = RunReport::from_records("vgg_c10", &sample());
        let j = r.to_json();
        assert!(j.contains("\"label\": \"vgg_c10\""), "{j}");
        assert!(j.contains("\"phases\": ["), "{j}");
        assert!(
            j.contains("\"name\": \"search.phase1\", \"count\": 2"),
            "{j}"
        );
        assert!(j.contains("\"probe.forward_passes\": 2"), "{j}");
        assert!(j.contains("\"search.avg_bits\": 2"), "{j}");
        // crude balance check on braces/brackets
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces in {j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_report_is_valid() {
        let r = RunReport::from_records("empty", &[]);
        let j = r.to_json();
        assert!(j.contains("\"phases\": [\n  ]"), "{j}");
        assert!(j.contains("\"counters\": {}"), "{j}");
        assert_eq!(r.total_s, 0.0);
    }

    #[test]
    fn latency_summaries_are_exported() {
        let mut r = RunReport::from_records("lat", &sample());
        let mut h = Histogram::new();
        for _ in 0..19 {
            h.record_us(10);
        }
        h.record_us(5000);
        r.add_latency("serve.latency", &h);
        assert_eq!(r.latency("serve.latency").unwrap().count, 20);
        assert_eq!(r.latency("missing"), None);
        let j = r.to_json();
        assert!(j.contains("\"serve.latency\": {\"count\": 20"), "{j}");
        assert!(j.contains("\"p95_us\": 16"), "{j}");
        assert!(j.contains("\"p99_us\": 8192"), "{j}");
        // Re-adding overwrites rather than duplicating.
        r.add_latency("serve.latency", &Histogram::new());
        assert_eq!(r.latencies.len(), 1);
        assert_eq!(r.latency("serve.latency").unwrap().count, 0);
    }

    #[test]
    fn write_json_creates_dirs() {
        let dir = std::env::temp_dir().join("cbq_telemetry_test/report");
        let path = dir.join("run_report.json");
        let r = RunReport::from_records("w", &sample());
        r.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"label\": \"w\""));
        std::fs::remove_file(&path).ok();
    }
}
