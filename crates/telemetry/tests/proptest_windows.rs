//! Property tests of the windowed per-class counters' determinism
//! contract: sharding a completion stream across any number of workers
//! and merging, or replaying it in any completion order, must reproduce
//! the serial single-feed state bit for bit. These are the invariants
//! the serving runtime's snapshot byte-identity gate rests on.
//!
//! The `proptest!` blocks explore random streams, shard counts, and
//! permutations; the plain `#[test]` companions pin one adversarial
//! instance of each property so the invariant is still exercised when
//! the property harness is unavailable.

use cbq_telemetry::{ClassWindow, ShadowSet, WindowSet};
use proptest::prelude::*;

const CLASSES: usize = 6;

/// One completed request: (predicted class, optional label, latency µs).
/// Classes range past `CLASSES` on purpose — clamping must commute too.
fn event_strategy() -> impl Strategy<Value = (usize, Option<usize>, u64)> {
    (0usize..8, proptest::option::of(0usize..8), 0u64..50_000)
}

/// Deterministic in-place Fisher–Yates driven by splitmix64, so a plain
/// `u64` seed parameter yields an arbitrary permutation without needing
/// an external RNG crate.
fn permute<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

fn serial_window(events: &[(usize, Option<usize>, u64)]) -> ClassWindow {
    let mut w = ClassWindow::new(0, CLASSES);
    for &(p, l, us) in events {
        w.record(p, l, us);
    }
    w
}

proptest! {
    /// Splitting a stream over any shard count and merging the shards in
    /// *reverse* order equals serial accumulation — the per-worker
    /// `ClassWindow` + drain-time merge design cannot change any bit.
    #[test]
    fn sharded_merge_equals_serial_accumulation(
        events in proptest::collection::vec(event_strategy(), 1..160),
        shards in 1usize..8,
    ) {
        let serial = serial_window(&events);
        let mut parts: Vec<ClassWindow> =
            (0..shards).map(|_| ClassWindow::new(0, CLASSES)).collect();
        for (i, &(p, l, us)) in events.iter().enumerate() {
            parts[i % shards].record(p, l, us);
        }
        let mut merged = ClassWindow::new(0, CLASSES);
        for part in parts.iter().rev() {
            merged.merge(part);
        }
        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.mix(), serial.mix());
        prop_assert_eq!(merged.accuracy(), serial.accuracy());
        prop_assert_eq!(merged.overall_accuracy(), serial.overall_accuracy());
    }

    /// Feeding a `WindowSet` the same completions in an arbitrary
    /// permutation (workers finish in any order) seals the same windows
    /// with the same counters as the in-order feed.
    #[test]
    fn window_set_is_completion_order_independent(
        events in proptest::collection::vec(event_strategy(), 1..160),
        window_size in 1u64..16,
        seed in any::<u64>(),
    ) {
        let mut serial = WindowSet::new(CLASSES, window_size);
        for (seq, &(p, l, us)) in events.iter().enumerate() {
            serial.record(seq as u64, p, l, us);
        }
        serial.finalize();

        let mut order: Vec<usize> = (0..events.len()).collect();
        permute(&mut order, seed);
        let mut shuffled = WindowSet::new(CLASSES, window_size);
        for &seq in &order {
            let (p, l, us) = events[seq];
            shuffled.record(seq as u64, p, l, us);
        }
        shuffled.finalize();

        prop_assert_eq!(serial.sealed(), shuffled.sealed());
        prop_assert_eq!(serial.cumulative(), shuffled.cumulative());
    }

    /// Shadow-accuracy accounting sharded across workers and merged in
    /// any completion order equals the serial feed — the cutover
    /// decision (`delta ≥ margin · labeled`) therefore cannot depend on
    /// which worker scored which completion, or when.
    #[test]
    fn sharded_shadow_accounting_equals_serial(
        events in proptest::collection::vec(
            (0u64..6, any::<bool>(), any::<bool>()), 1..200),
        shards in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut serial = ShadowSet::new();
        for &(w, i, c) in &events {
            serial.record(w, i, c);
        }

        // Shard by round-robin, then merge the shards in a seeded
        // arbitrary order (workers finish in any order).
        let mut parts: Vec<ShadowSet> = (0..shards).map(|_| ShadowSet::new()).collect();
        for (k, &(w, i, c)) in events.iter().enumerate() {
            parts[k % shards].record(w, i, c);
        }
        let mut order: Vec<usize> = (0..shards).collect();
        permute(&mut order, seed);
        let mut merged = ShadowSet::new();
        for &s in &order {
            merged.merge(&parts[s]);
        }

        prop_assert_eq!(&merged, &serial);
        prop_assert_eq!(merged.totals(), serial.totals());
        prop_assert_eq!(merged.delta(), serial.delta());
        for margin in [0.0, 0.25, 1.0] {
            prop_assert_eq!(
                merged.beats_incumbent_by(margin),
                serial.beats_incumbent_by(margin)
            );
        }

        // And a plain permutation of the record order — no sharding at
        // all — is just as invisible.
        let mut order: Vec<usize> = (0..events.len()).collect();
        permute(&mut order, seed ^ 0xA5A5_A5A5);
        let mut shuffled = ShadowSet::new();
        for &k in &order {
            let (w, i, c) = events[k];
            shuffled.record(w, i, c);
        }
        prop_assert_eq!(&shuffled, &serial);
    }

    /// Errors interleaved anywhere in the stream still seal windows at
    /// exactly `window_size` resolved members, in index order.
    #[test]
    fn errors_never_stall_or_reorder_sealing(
        outcomes in proptest::collection::vec(any::<bool>(), 1..120),
        window_size in 1u64..12,
    ) {
        let mut set = WindowSet::new(CLASSES, window_size);
        let mut sealed = Vec::new();
        for (seq, &ok) in outcomes.iter().enumerate() {
            let now = if ok {
                set.record(seq as u64, seq % CLASSES, None, 1)
            } else {
                set.record_error(seq as u64)
            };
            sealed.extend(now);
        }
        let full = outcomes.len() as u64 / window_size;
        prop_assert_eq!(sealed.len() as u64, full);
        prop_assert_eq!(sealed, (0..full).collect::<Vec<u64>>());
        set.finalize();
        let total = set.cumulative();
        prop_assert_eq!(total.resolved(), outcomes.len() as u64);
    }
}

/// Pinned instance of `sharded_merge_equals_serial_accumulation`.
#[test]
fn pinned_sharded_merge_matches_serial() {
    let mut events = Vec::new();
    let mut seed = 0xCB0_2026u64;
    for i in 0..150 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let label = if seed & 1 == 0 {
            Some((seed >> 7) as usize % 8)
        } else {
            None
        };
        events.push(((seed >> 3) as usize % 8, label, (seed >> 11) % 50_000 + i));
    }
    let serial = serial_window(&events);
    for shards in 1..8 {
        let mut parts: Vec<ClassWindow> =
            (0..shards).map(|_| ClassWindow::new(0, CLASSES)).collect();
        for (i, &(p, l, us)) in events.iter().enumerate() {
            parts[i % shards].record(p, l, us);
        }
        let mut merged = ClassWindow::new(0, CLASSES);
        for part in parts.iter().rev() {
            merged.merge(part);
        }
        assert_eq!(merged, serial, "{shards} shards diverged from serial");
        assert_eq!(merged.mix(), serial.mix());
        assert_eq!(merged.accuracy(), serial.accuracy());
    }
}

/// Pinned instance of `sharded_shadow_accounting_equals_serial`.
#[test]
fn pinned_sharded_shadow_accounting_matches_serial() {
    let mut events = Vec::new();
    let mut seed = 0x5AD0_2026u64;
    for _ in 0..180 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        events.push((seed >> 5 & 0x7, seed & 1 == 0, seed & 2 == 0));
    }
    let mut serial = ShadowSet::new();
    for &(w, i, c) in &events {
        serial.record(w, i, c);
    }
    for shards in 1..8 {
        let mut parts: Vec<ShadowSet> = (0..shards).map(|_| ShadowSet::new()).collect();
        for (k, &(w, i, c)) in events.iter().enumerate() {
            parts[k % shards].record(w, i, c);
        }
        let mut merged = ShadowSet::new();
        for part in parts.iter().rev() {
            merged.merge(part);
        }
        assert_eq!(merged, serial, "{shards} shards diverged from serial");
        assert_eq!(merged.totals(), serial.totals());
        assert_eq!(merged.delta(), serial.delta());
        assert_eq!(
            merged.beats_incumbent_by(0.1),
            serial.beats_incumbent_by(0.1)
        );
    }
}

/// Pinned instance of `window_set_is_completion_order_independent`.
#[test]
fn pinned_shuffled_feed_matches_serial() {
    let events: Vec<(usize, Option<usize>, u64)> = (0..97)
        .map(|i| {
            (
                (i * 5) % 8,
                (i % 3 != 0).then_some((i * 11) % 8),
                (i as u64) * 13 % 997,
            )
        })
        .collect();
    for window_size in [1u64, 3, 7, 16] {
        let mut serial = WindowSet::new(CLASSES, window_size);
        for (seq, &(p, l, us)) in events.iter().enumerate() {
            serial.record(seq as u64, p, l, us);
        }
        serial.finalize();
        for seed in [1u64, 0xDEAD_BEEF, u64::MAX / 3] {
            let mut order: Vec<usize> = (0..events.len()).collect();
            permute(&mut order, seed);
            let mut shuffled = WindowSet::new(CLASSES, window_size);
            for &seq in &order {
                let (p, l, us) = events[seq];
                shuffled.record(seq as u64, p, l, us);
            }
            shuffled.finalize();
            assert_eq!(serial.sealed(), shuffled.sealed());
            assert_eq!(serial.cumulative(), shuffled.cumulative());
        }
    }
}
