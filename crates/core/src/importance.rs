//! Class-based importance scoring (paper §III-A/B, Eqs. 4–8).
//!
//! For every quantizable layer ("unit") the scorer locates its *tap* — the
//! next ReLU in execution order, whose activations are the unit's neuron
//! outputs — then, class by class, runs one forward/backward pass over a
//! batch of validation images with the gradient seeded at the class logit.
//! The cached tap tensors yield the Taylor score `s = |a · ∂Φ/∂a|`
//! (Eq. 5) per image and neuron; the fraction of a class's images in
//! which `s > ε` is `β` (Eq. 6); `γ = Σ_m β` (Eq. 7) counts the classes a
//! neuron serves; and a filter's score `φ` is the max `γ` over its
//! neurons (Eq. 8).

use crate::{CqError, Result};
use cbq_data::{Batch, Subset};
use cbq_nn::{losses, Layer, LayerKind, Phase, Sequential};
use cbq_quant::quant_units;
use cbq_telemetry::Telemetry;
use cbq_tensor::parallel::{parallel_map_with, Parallelism};
use cbq_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration for the importance-scoring pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreConfig {
    /// Validation images per class (`N_s` in Eq. 6).
    pub samples_per_class: usize,
    /// Criticality threshold `ε`. The paper uses 1e-50 with f64
    /// activations; with f32 activations any positive value below the
    /// smallest meaningful product works — default 1e-30.
    pub epsilon: f64,
}

impl ScoreConfig {
    /// Default scoring config: 40 images per class, `ε = 1e-30`.
    pub fn new() -> Self {
        ScoreConfig {
            samples_per_class: 40,
            epsilon: 1e-30,
        }
    }
}

impl Default for ScoreConfig {
    fn default() -> Self {
        ScoreConfig::new()
    }
}

/// Scores for one quantizable unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitScores {
    /// Layer name.
    pub name: String,
    /// Name of the tap layer whose activations were scored.
    pub tap: String,
    /// Filters (conv output channels / FC output neurons).
    pub out_channels: usize,
    /// Scalar weights per filter (for average-bit accounting).
    pub weights_per_filter: usize,
    /// Neurons per filter at the tap (`H*W` for conv, 1 for FC).
    pub neurons_per_filter: usize,
    /// Per-neuron class score `γ` (Eq. 7), length
    /// `out_channels * neurons_per_filter`.
    pub gamma: Vec<f64>,
    /// Per-filter score `φ` (Eq. 8), length `out_channels`.
    pub phi: Vec<f64>,
    /// Per-class, per-filter `β` (max over the filter's neurons) — the
    /// Figure 1-style class-pathway diagnostics.
    pub beta_filter: Vec<Vec<f64>>,
}

impl UnitScores {
    /// Filter scores sorted ascending — the curves of Figures 3 and 6.
    pub fn sorted_phi(&self) -> Vec<f64> {
        let mut v = self.phi.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
        v
    }

    /// Histogram of `phi` over `bins` equal-width bins spanning
    /// `[0, max_score]` — the data behind Figure 2.
    pub fn phi_histogram(&self, bins: usize, max_score: f64) -> Vec<usize> {
        let mut h = vec![0usize; bins.max(1)];
        if max_score <= 0.0 {
            return h;
        }
        for &p in &self.phi {
            let idx = ((p / max_score) * bins as f64).floor() as usize;
            h[idx.min(bins - 1)] += 1;
        }
        h
    }
}

/// All unit scores for a network, in execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceScores {
    /// Number of classes `M` used for scoring.
    pub num_classes: usize,
    /// Per-unit scores in network order.
    pub units: Vec<UnitScores>,
}

impl ImportanceScores {
    /// Finds a unit's scores by layer name.
    pub fn unit(&self, name: &str) -> Option<&UnitScores> {
        self.units.iter().find(|u| u.name == name)
    }

    /// The maximum filter score across all units (the search's upper
    /// bound; at most `num_classes`).
    pub fn max_phi(&self) -> f64 {
        self.units
            .iter()
            .flat_map(|u| u.phi.iter().copied())
            .fold(0.0f64, f64::max)
    }

    /// Total filters across units.
    pub fn total_filters(&self) -> usize {
        self.units.iter().map(|u| u.out_channels).sum()
    }
}

/// One unit's tap association, discovered by flattening the network.
#[derive(Debug, Clone)]
struct TapPlan {
    unit_name: String,
    tap_name: String,
    out_channels: usize,
    weights_per_filter: usize,
}

/// Associates each quantizable layer with its importance tap: the next
/// ReLU in execution order, or the layer itself when no ReLU follows.
fn plan_taps(net: &mut Sequential) -> Vec<TapPlan> {
    // (name, kind, quantizable, out_channels, weight_len) per flattened layer
    type FlatLayer = (String, LayerKind, bool, Option<usize>, Option<usize>);
    let mut flat: Vec<FlatLayer> = Vec::new();
    net.visit_layers_mut(&mut |l| {
        flat.push((
            l.name().to_string(),
            l.kind(),
            l.quantizable(),
            l.out_channels(),
            l.weight_len(),
        ));
    });
    let mut plans = Vec::new();
    for (i, (name, _, quantizable, out_channels, weight_len)) in flat.iter().enumerate() {
        if !*quantizable {
            continue;
        }
        let (Some(out), Some(wlen)) = (out_channels, weight_len) else {
            continue;
        };
        let tap = flat[i + 1..]
            .iter()
            .find(|(_, kind, _, _, _)| *kind == LayerKind::Relu)
            .map(|(tap_name, _, _, _, _)| tap_name.clone())
            .unwrap_or_else(|| name.clone());
        plans.push(TapPlan {
            unit_name: name.clone(),
            tap_name: tap,
            out_channels: *out,
            weights_per_filter: wlen / out.max(&1),
        });
    }
    plans
}

/// Computes class-based importance scores for every quantizable unit of
/// `net` using the validation split (paper §III-A/B).
///
/// Runs `net` in eval mode — the network's weights and running statistics
/// are read, gradients are accumulated and then cleared, so the model is
/// unchanged afterwards.
///
/// # Example
///
/// ```no_run
/// use cbq_core::{score_network, ScoreConfig};
/// use cbq_data::{SyntheticImages, SyntheticSpec};
/// use cbq_nn::models;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng)?;
/// let mut net = models::mlp(&[data.feature_len(), 16, 8, 3], &mut rng)?;
/// // ... train `net` first ...
/// let scores = score_network(&mut net, data.val(), 3, &ScoreConfig::new())?;
/// for unit in &scores.units {
///     println!("{}: max filter score {:.2}", unit.name, unit.sorted_phi().last().unwrap());
/// }
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`CqError::ScoreMismatch`] when a tap's activation shape does
/// not match its unit's filter count, or propagates dataset/layer errors
/// (e.g. a class with no validation samples).
pub fn score_network(
    net: &mut Sequential,
    val: &Subset,
    num_classes: usize,
    config: &ScoreConfig,
) -> Result<ImportanceScores> {
    score_network_traced(net, val, num_classes, config, &Telemetry::disabled())
}

/// [`score_network`] with telemetry: wraps the pass in a `score` span,
/// counts `score.forward_passes` / `score.backward_passes` /
/// `score.images`, and reports the per-image scoring cost as the
/// `score.ms_per_image` gauge.
///
/// # Errors
///
/// Same as [`score_network`].
pub fn score_network_traced(
    net: &mut Sequential,
    val: &Subset,
    num_classes: usize,
    config: &ScoreConfig,
    tel: &Telemetry,
) -> Result<ImportanceScores> {
    score_network_with(net, val, num_classes, config, tel, Parallelism::auto())
}

/// Per-shard output of one forward/backward task: integer critical-pathway
/// counts per unit (the Eq. 6 numerator), the per-image tap width per
/// unit, and the shard's compute seconds (for the speedup gauge).
struct ShardCounts {
    crit: Vec<Vec<u32>>,
    per_item: Vec<usize>,
    secs: f64,
}

/// Runs one eval-mode forward/backward over `images` on `net` and counts,
/// per unit neuron, in how many images the neuron is critical
/// (`|a · ∂Φ/∂a| > ε`, Eq. 5 + Eq. 6 numerator).
///
/// Scoring must run at `Phase::Eval`, *not* the allocation-free
/// `Phase::Infer` path the search probes use: the harvest below reads
/// `cached_output` / `cached_grad_out` off the tap layers, and `Infer`
/// deliberately skips that caching. The heavy lifting (conv/linear
/// forwards and backwards) still goes through the packed-GEMM kernels
/// either way, so scoring gets the kernel speedup without the zero-alloc
/// plumbing.
fn count_critical(
    net: &mut Sequential,
    plans: &[TapPlan],
    wanted: &HashMap<&str, Vec<usize>>,
    images: &Tensor,
    labels: &[usize],
    epsilon: f64,
) -> Result<(Vec<Vec<u32>>, Vec<usize>)> {
    let n_s = labels.len();
    let logits = net.forward(images, Phase::Eval)?;
    // Seed the backward pass with ∂Φ/∂logits = one-hot at the class
    // logit: Φ(x_m) is the class-m output of the network.
    let seed = losses::one_hot(labels, logits.shape()[1])?;
    net.backward(&seed)?;

    // Harvest tap tensors. Several units can share one tap (e.g. a
    // residual block's conv2 and its downsample conv both read the
    // post-add ReLU), so the map holds every interested unit index.
    let mut harvest: Vec<Option<(Tensor, Tensor)>> = vec![None; plans.len()];
    net.visit_layers_mut(&mut |l| {
        if let Some(indices) = wanted.get(l.name()) {
            if let (Some(a), Some(g)) = (l.cached_output(), l.cached_grad_out()) {
                for &i in indices {
                    harvest[i] = Some((a.clone(), g.clone()));
                }
            }
        }
    });

    let mut crit_all = Vec::with_capacity(plans.len());
    let mut per_item_all = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let (act, grad) = harvest[i].as_ref().ok_or_else(|| {
            CqError::ScoreMismatch(format!(
                "tap {} for unit {} produced no cached activations",
                plan.tap_name, plan.unit_name
            ))
        })?;
        let per_item = act.len() / n_s.max(1);
        if !per_item.is_multiple_of(plan.out_channels) {
            return Err(CqError::ScoreMismatch(format!(
                "tap {} activation size {} is not divisible by {} filters of unit {}",
                plan.tap_name, per_item, plan.out_channels, plan.unit_name
            )));
        }
        let a = act.as_slice();
        let g = grad.as_slice();
        let mut crit = vec![0u32; per_item];
        for b in 0..n_s {
            let base = b * per_item;
            for n in 0..per_item {
                let s = (a[base + n] as f64 * g[base + n] as f64).abs();
                if s > epsilon {
                    crit[n] += 1;
                }
            }
        }
        crit_all.push(crit);
        per_item_all.push(per_item);
    }
    Ok((crit_all, per_item_all))
}

/// [`score_network_traced`] with an explicit worker budget.
///
/// Each class batch is split into at most `par.threads()` contiguous image
/// shards; every worker scores its shards on a private clone of `net`,
/// accumulating *integer* critical-pathway counts. The merge then sums the
/// shard counts and derives `β`, `γ`, `φ` in fixed class order. Eval-mode
/// forward/backward is per-sample independent (batch norm reads running
/// statistics, dropout is identity), so every image's tap activations and
/// gradients are bitwise identical regardless of which shard carries it —
/// and integer addition is order-independent — which makes the resulting
/// scores bit-identical to the serial path at any thread count.
/// `par.threads() == 1` runs the one-batch-per-class serial path inline.
///
/// # Errors
///
/// Same as [`score_network`].
pub fn score_network_with(
    net: &mut Sequential,
    val: &Subset,
    num_classes: usize,
    config: &ScoreConfig,
    tel: &Telemetry,
    par: Parallelism,
) -> Result<ImportanceScores> {
    score_network_impl(net, val, num_classes, config, None, tel, par)
}

/// Class-*weighted* importance scoring for an observed traffic mix.
///
/// Identical to [`score_network_with`] except that each class's `β`
/// contribution to `γ` (Eq. 7) is scaled by `class_weights[class]` — the
/// requant path derives those weights from the observed class mix via
/// [`mix_weights`](crate::mix_weights), so neurons serving over-represented
/// classes earn proportionally higher scores and therefore more bits.
/// With all weights equal to 1 the result is bit-identical to the
/// unweighted scorer (the same float operations in the same order).
/// Weights normalized to mean 1 keep `γ ≤ Σ w = M`, preserving the
/// search's `max_phi ≤ M` upper bound.
///
/// # Errors
///
/// Same as [`score_network`], plus [`CqError::InvalidConfig`] when
/// `class_weights` has the wrong length, a non-finite or negative entry,
/// or sums to zero.
pub fn score_network_mix(
    net: &mut Sequential,
    val: &Subset,
    num_classes: usize,
    config: &ScoreConfig,
    class_weights: &[f64],
    tel: &Telemetry,
    par: Parallelism,
) -> Result<ImportanceScores> {
    if class_weights.len() != num_classes {
        return Err(CqError::InvalidConfig(format!(
            "class_weights has {} entries for {} classes",
            class_weights.len(),
            num_classes
        )));
    }
    if class_weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(CqError::InvalidConfig(
            "class_weights must be finite and non-negative".into(),
        ));
    }
    if class_weights.iter().sum::<f64>() <= 0.0 {
        return Err(CqError::InvalidConfig(
            "class_weights must not all be zero".into(),
        ));
    }
    score_network_impl(net, val, num_classes, config, Some(class_weights), tel, par)
}

fn score_network_impl(
    net: &mut Sequential,
    val: &Subset,
    num_classes: usize,
    config: &ScoreConfig,
    weights: Option<&[f64]>,
    tel: &Telemetry,
    par: Parallelism,
) -> Result<ImportanceScores> {
    if num_classes == 0 {
        return Err(CqError::InvalidConfig(
            "num_classes must be positive".into(),
        ));
    }
    if config.samples_per_class == 0 {
        return Err(CqError::InvalidConfig(
            "samples_per_class must be positive".into(),
        ));
    }
    let threads = par.threads().max(1);
    let span = tel.span_with(
        "score",
        &[
            ("num_classes", num_classes.into()),
            ("threads", threads.into()),
        ],
    );
    let t0 = tel.elapsed_s();
    let plans = plan_taps(net);
    let mut wanted: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, p) in plans.iter().enumerate() {
        wanted.entry(p.tap_name.as_str()).or_default().push(i);
    }

    // Materialize the class batches up front so shard boundaries are known
    // before any worker starts.
    let mut class_batches: Vec<Batch> = Vec::with_capacity(num_classes);
    for class in 0..num_classes {
        class_batches.push(val.class_batch(class, config.samples_per_class)?);
    }

    // One task per (class, shard). `threads == 1` yields exactly one shard
    // per class — literally the serial one-batch-per-class path.
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new();
    for (class, batch) in class_batches.iter().enumerate() {
        let n_s = batch.len();
        for s in 0..threads {
            let start = s * n_s / threads;
            let end = (s + 1) * n_s / threads;
            if start < end {
                tasks.push((class, start, end));
            }
        }
    }

    let workers = threads.min(tasks.len()).max(1);
    let clones: Vec<Sequential> = (0..workers).map(|_| net.clone()).collect();
    let tasks_ref = &tasks;
    let plans_ref = &plans;
    let wanted_ref = &wanted;
    let batches_ref = &class_batches;
    let epsilon = config.epsilon;
    let results: Vec<Result<ShardCounts>> =
        parallel_map_with(clones, tasks.len(), move |worker, ti| {
            let (class, start, end) = tasks_ref[ti];
            let batch = &batches_ref[class];
            let item_dims = &batch.images.shape()[1..];
            let item_len: usize = item_dims.iter().product();
            let data = batch.images.as_slice()[start * item_len..end * item_len].to_vec();
            let mut dims = vec![end - start];
            dims.extend_from_slice(item_dims);
            let images = Tensor::from_vec(data, &dims)?;
            let clock = std::time::Instant::now();
            let (crit, per_item) = count_critical(
                worker,
                plans_ref,
                wanted_ref,
                &images,
                &batch.labels[start..end],
                epsilon,
            )?;
            Ok(ShardCounts {
                crit,
                per_item,
                secs: clock.elapsed().as_secs_f64(),
            })
        });

    // Collect shard counts per class in task order (= shard order).
    let mut by_class: Vec<Vec<ShardCounts>> = (0..num_classes).map(|_| Vec::new()).collect();
    let mut images_scored = 0u64;
    let mut busy_s = 0.0f64;
    let n_tasks = results.len();
    for (ti, res) in results.into_iter().enumerate() {
        let counts = res?;
        busy_s += counts.secs;
        images_scored += (tasks[ti].2 - tasks[ti].1) as u64;
        by_class[tasks[ti].0].push(counts);
    }
    tel.counter_add("score.forward_passes", n_tasks as u64);
    tel.counter_add("score.backward_passes", n_tasks as u64);
    tel.counter_add("score.images", images_scored);

    // Fixed-order merge: per unit, sum the integer shard counts, then fold
    // β into γ class by class — the same float operations, in the same
    // order, as the serial path.
    let mut gamma: Vec<Vec<f64>> = vec![Vec::new(); plans.len()];
    let mut beta_filter: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); num_classes]; plans.len()];
    let mut neurons_per_filter: Vec<usize> = vec![0; plans.len()];
    #[allow(clippy::needless_range_loop)] // `class` indexes several accumulators
    for class in 0..num_classes {
        let n_s = class_batches[class].len();
        tel.trace(
            "score.class",
            &[("class", class.into()), ("samples", n_s.into())],
        );
        for (i, plan) in plans.iter().enumerate() {
            let per_item = by_class[class][0].per_item[i];
            let mut crit = vec![0u32; per_item];
            for shard in &by_class[class] {
                debug_assert_eq!(shard.per_item[i], per_item);
                for (n, &c) in shard.crit[i].iter().enumerate() {
                    crit[n] += c;
                }
            }
            let npf = per_item / plan.out_channels;
            if gamma[i].is_empty() {
                gamma[i] = vec![0.0; per_item];
                neurons_per_filter[i] = npf;
            }
            // β per neuron, accumulated into γ; filter-level β kept for
            // diagnostics.
            let mut bf = vec![0.0f64; plan.out_channels];
            for (n, &c) in crit.iter().enumerate() {
                let beta = c as f64 / n_s as f64;
                // β stays unweighted in the per-class diagnostics; only
                // the γ accumulation is mix-weighted.
                match weights {
                    None => gamma[i][n] += beta,
                    Some(w) => gamma[i][n] += w[class] * beta,
                }
                let filter = n / npf;
                if beta > bf[filter] {
                    bf[filter] = beta;
                }
            }
            beta_filter[i][class] = bf;
        }
    }

    // Cross-check against the quant-unit walk so the search can rely on
    // index alignment.
    let units_check = quant_units(net);
    if units_check.len() != plans.len() {
        return Err(CqError::ScoreMismatch(format!(
            "{} quant units but {} tap plans",
            units_check.len(),
            plans.len()
        )));
    }

    let mut units = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let npf = neurons_per_filter[i].max(1);
        let phi: Vec<f64> = (0..plan.out_channels)
            .map(|k| {
                gamma[i][k * npf..(k + 1) * npf]
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max)
            })
            .collect();
        units.push(UnitScores {
            name: plan.unit_name.clone(),
            tap: plan.tap_name.clone(),
            out_channels: plan.out_channels,
            weights_per_filter: plan.weights_per_filter,
            neurons_per_filter: npf,
            gamma: std::mem::take(&mut gamma[i]),
            phi,
            beta_filter: std::mem::take(&mut beta_filter[i]),
        });
    }
    let wall_s = tel.elapsed_s() - t0;
    if images_scored > 0 {
        tel.gauge("score.ms_per_image", wall_s * 1000.0 / images_scored as f64);
    }
    if wall_s > 0.0 && busy_s > 0.0 {
        // Sum of per-shard compute time over wall time ≈ achieved speedup
        // vs running the same shards serially.
        tel.gauge("score.parallel_speedup_est", busy_s / wall_s);
    }
    span.end();
    let scores = ImportanceScores { num_classes, units };
    ensure_scores_finite(&scores)?;
    Ok(scores)
}

/// Phase-boundary numeric guard: a single NaN in `phi` would silently
/// poison every threshold comparison of the §III-C search (NaN compares
/// false against everything), so reject non-finite scores here with a
/// diagnosis instead of letting the search mis-allocate bits.
fn ensure_scores_finite(scores: &ImportanceScores) -> Result<()> {
    for unit in &scores.units {
        for (what, values) in [("gamma", &unit.gamma), ("phi", &unit.phi)] {
            let report = cbq_resilience::scan_finite_f64(values);
            if !report.is_finite() {
                return Err(CqError::NonFinite(format!(
                    "importance {what} of unit {}: {} NaN + {} Inf of {} values (first at index {})",
                    unit.name,
                    report.nan,
                    report.inf,
                    report.total,
                    report.first_bad.unwrap_or(0)
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::{SyntheticImages, SyntheticSpec};
    use cbq_nn::models;
    use cbq_nn::{Trainer, TrainerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn non_finite_scores_rejected_with_diagnosis() {
        let scores = ImportanceScores {
            num_classes: 2,
            units: vec![UnitScores {
                name: "fc1".into(),
                tap: "r1".into(),
                out_channels: 2,
                weights_per_filter: 4,
                neurons_per_filter: 1,
                gamma: vec![1.0, f64::NAN],
                phi: vec![1.0, 2.0],
                beta_filter: vec![],
            }],
        };
        let err = ensure_scores_finite(&scores).unwrap_err();
        assert!(matches!(err, CqError::NonFinite(_)), "got {err}");
        let msg = err.to_string();
        assert!(msg.contains("gamma") && msg.contains("fc1"), "{msg}");
    }

    fn scored_mlp() -> (ImportanceScores, usize) {
        let mut rng = StdRng::seed_from_u64(7);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let f = data.feature_len();
        let flat_train = cbq_data::Subset::new(
            data.train()
                .images()
                .reshape(&[data.train().len(), f])
                .unwrap(),
            data.train().labels().to_vec(),
        )
        .unwrap();
        let flat_val = cbq_data::Subset::new(
            data.val().images().reshape(&[data.val().len(), f]).unwrap(),
            data.val().labels().to_vec(),
        )
        .unwrap();
        let mut net = models::mlp(&[f, 16, 8, 3], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(8, 0.05)
        };
        Trainer::new(tc)
            .fit(&mut net, &flat_train, &mut rng)
            .unwrap();
        let scores = score_network(
            &mut net,
            &flat_val,
            3,
            &ScoreConfig {
                samples_per_class: 8,
                epsilon: 1e-30,
            },
        )
        .unwrap();
        (scores, f)
    }

    #[test]
    fn mlp_scores_have_expected_structure() {
        let (scores, _) = scored_mlp();
        // quantizable units: only fc2 (first fc1 / output fc3 excluded)
        assert_eq!(scores.units.len(), 1);
        assert_eq!(scores.units[0].name, "fc2");
        assert_eq!(scores.units[0].tap, "relu2");
        assert_eq!(scores.units[0].out_channels, 8);
        assert_eq!(scores.units[0].neurons_per_filter, 1);
        assert_eq!(scores.units[0].phi.len(), 8);
    }

    #[test]
    fn scores_are_bounded_by_class_count() {
        let (scores, _) = scored_mlp();
        for u in &scores.units {
            for &p in &u.phi {
                assert!((0.0..=3.0 + 1e-9).contains(&p), "phi {p} outside [0, M]");
            }
            for &g in &u.gamma {
                assert!((0.0..=3.0 + 1e-9).contains(&g));
            }
        }
        assert!(scores.max_phi() <= 3.0 + 1e-9);
        assert!(
            scores.max_phi() > 0.0,
            "a trained network must have active neurons"
        );
    }

    #[test]
    fn beta_filter_rows_are_per_class() {
        let (scores, _) = scored_mlp();
        for u in &scores.units {
            assert_eq!(u.beta_filter.len(), 3);
            for row in &u.beta_filter {
                assert_eq!(row.len(), u.out_channels);
                assert!(row.iter().all(|&b| (0.0..=1.0).contains(&b)));
            }
        }
    }

    #[test]
    fn sorted_phi_ascends_and_histogram_counts() {
        let (scores, _) = scored_mlp();
        let u = &scores.units[0];
        let sorted = u.sorted_phi();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let h = u.phi_histogram(5, 3.0);
        assert_eq!(h.iter().sum::<usize>(), u.out_channels);
    }

    #[test]
    fn conv_units_have_spatial_neurons() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let cfg = cbq_nn::models::VggConfig {
            in_channels: 1,
            height: 8,
            width: 8,
            base_width: 4,
            fc_dim: 16,
            num_classes: 2,
        };
        let mut net = models::vgg_small(&cfg, &mut rng).unwrap();
        // resize: tiny spec is 6x6, so regenerate with 8x8
        let spec = SyntheticSpec {
            height: 8,
            width: 8,
            ..SyntheticSpec::tiny(2)
        };
        let data8 = SyntheticImages::generate(&spec, &mut rng).unwrap();
        let _ = data;
        let scores = score_network(
            &mut net,
            data8.val(),
            2,
            &ScoreConfig {
                samples_per_class: 4,
                epsilon: 1e-30,
            },
        )
        .unwrap();
        let conv2 = scores.unit("conv2").unwrap();
        assert_eq!(conv2.neurons_per_filter, 64, "conv2 tap is pre-pool 8x8");
        assert_eq!(conv2.phi.len(), 4);
        let fc5 = scores.unit("fc5").unwrap();
        assert_eq!(fc5.neurons_per_filter, 1);
    }

    #[test]
    fn unit_weights_match_unweighted_scorer_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let f = data.feature_len();
        let flat_train = cbq_data::Subset::new(
            data.train()
                .images()
                .reshape(&[data.train().len(), f])
                .unwrap(),
            data.train().labels().to_vec(),
        )
        .unwrap();
        let flat_val = cbq_data::Subset::new(
            data.val().images().reshape(&[data.val().len(), f]).unwrap(),
            data.val().labels().to_vec(),
        )
        .unwrap();
        let mut net = models::mlp(&[f, 16, 8, 3], &mut rng).unwrap();
        Trainer::new(TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(6, 0.05)
        })
        .fit(&mut net, &flat_train, &mut rng)
        .unwrap();
        let cfg = ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        };
        let tel = Telemetry::disabled();
        let plain =
            score_network_with(&mut net, &flat_val, 3, &cfg, &tel, Parallelism::serial()).unwrap();
        let ones = score_network_mix(
            &mut net,
            &flat_val,
            3,
            &cfg,
            &[1.0, 1.0, 1.0],
            &tel,
            Parallelism::serial(),
        )
        .unwrap();
        assert_eq!(plain, ones, "unit weights must reproduce unweighted bits");

        // A skewed mix reweights γ but never pushes it past Σw.
        let skew = score_network_mix(
            &mut net,
            &flat_val,
            3,
            &cfg,
            &[2.5, 0.25, 0.25],
            &tel,
            Parallelism::serial(),
        )
        .unwrap();
        assert!(skew.max_phi() <= 3.0 + 1e-9);
        assert_ne!(plain.units[0].gamma, skew.units[0].gamma);
    }

    #[test]
    fn mix_weights_validation() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let f = data.feature_len();
        let flat_val = cbq_data::Subset::new(
            data.val().images().reshape(&[data.val().len(), f]).unwrap(),
            data.val().labels().to_vec(),
        )
        .unwrap();
        let mut net = models::mlp(&[f, 8, 4, 2], &mut rng).unwrap();
        let cfg = ScoreConfig {
            samples_per_class: 4,
            epsilon: 1e-30,
        };
        let tel = Telemetry::disabled();
        for bad in [
            vec![1.0],                // wrong length
            vec![1.0, f64::NAN],      // non-finite
            vec![1.0, -0.5],          // negative
            vec![0.0, 0.0],           // all zero
        ] {
            assert!(
                score_network_mix(
                    &mut net,
                    &flat_val,
                    2,
                    &cfg,
                    &bad,
                    &tel,
                    Parallelism::serial()
                )
                .is_err(),
                "weights {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let f = data.feature_len();
        let flat_val = cbq_data::Subset::new(
            data.val().images().reshape(&[data.val().len(), f]).unwrap(),
            data.val().labels().to_vec(),
        )
        .unwrap();
        let mut net = models::mlp(&[f, 8, 2], &mut rng).unwrap();
        assert!(score_network(&mut net, &flat_val, 0, &ScoreConfig::new()).is_err());
        assert!(score_network(
            &mut net,
            &flat_val,
            2,
            &ScoreConfig {
                samples_per_class: 0,
                epsilon: 1e-30
            }
        )
        .is_err());
    }

    #[test]
    fn dead_neurons_score_zero() {
        // A network whose hidden layer weights are zero has no critical
        // pathways: every score must be exactly zero.
        let mut rng = StdRng::seed_from_u64(13);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let f = data.feature_len();
        let flat_val = cbq_data::Subset::new(
            data.val().images().reshape(&[data.val().len(), f]).unwrap(),
            data.val().labels().to_vec(),
        )
        .unwrap();
        let mut net = models::mlp(&[f, 8, 4, 2], &mut rng).unwrap();
        net.visit_params(&mut |p| p.value.fill(0.0));
        let scores = score_network(
            &mut net,
            &flat_val,
            2,
            &ScoreConfig {
                samples_per_class: 4,
                epsilon: 1e-30,
            },
        )
        .unwrap();
        for u in &scores.units {
            assert!(
                u.phi.iter().all(|&p| p == 0.0),
                "unit {} scored nonzero",
                u.name
            );
        }
    }
}
