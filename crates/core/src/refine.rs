//! Knowledge-distillation refining of the quantized network (paper
//! §III-D, Eq. 10).
//!
//! The full-precision model is the teacher. Because the teacher is frozen
//! during refining, its soft targets are computed **once** over the
//! training split ([`teacher_probs`]) and reused every epoch — the same
//! math as batching the teacher forward pass inside the loop, at a
//! fraction of the cost. The student trains with
//! `L = α·L_ce + (1-α)·KL(teacher ‖ student)` through the installed
//! fake-quantization transforms; gradients reach the full-precision
//! shadow weights unchanged (straight-through estimator).

use crate::{CqError, Result};
use cbq_data::Subset;
use cbq_nn::{
    load_state_dict, losses, non_finite_step, poison_first_gradient, state_dict, EpochStats, Layer,
    Phase, Sequential, Sgd, SgdConfig, StateDict, StepLr,
};
use cbq_resilience::{FaultPlan, GuardAction, GuardPolicy, GuardState};
use cbq_telemetry::{Level, Telemetry};
use cbq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the refining phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefineConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Minibatch size (100 in the paper).
    pub batch_size: usize,
    /// Learning rate (the paper reuses the training-phase optimizer).
    pub lr: f32,
    /// Epochs at which the LR divides by `lr_gamma`.
    pub lr_milestones: Vec<usize>,
    /// LR division factor.
    pub lr_gamma: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// KD mixing factor `α` (0.3 in the paper).
    pub alpha: f32,
    /// Print one line per epoch to stderr when set.
    pub verbose: bool,
    /// When set, epoch `e` shuffles its batches with a fresh
    /// `StdRng::seed_from_u64(shuffle_seed + e)` instead of the caller's
    /// RNG, making each epoch's batch order a pure function of
    /// `(seed, epoch)` — required for a resumed run to replay the exact
    /// batches an uninterrupted run would have seen.
    #[serde(default)]
    pub shuffle_seed: Option<u64>,
    /// Numeric-guard policy for NaN/Inf in the per-step loss/gradients.
    /// Not serialized (operational policy, not an experiment parameter);
    /// deserialized configs get the default ([`GuardPolicy::Abort`]).
    #[serde(skip)]
    pub guard: GuardPolicy,
}

impl RefineConfig {
    /// A short refining recipe with the paper's `α = 0.3`.
    pub fn quick(epochs: usize, lr: f32) -> Self {
        RefineConfig {
            epochs,
            batch_size: 100,
            lr,
            lr_milestones: vec![epochs / 2, epochs * 3 / 4],
            lr_gamma: 10.0,
            momentum: 0.9,
            weight_decay: 1e-4,
            alpha: 0.3,
            verbose: false,
            shuffle_seed: None,
            guard: GuardPolicy::default(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(CqError::InvalidConfig("batch_size must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.alpha) {
            return Err(CqError::InvalidConfig(format!(
                "alpha {} outside [0, 1]",
                self.alpha
            )));
        }
        Ok(())
    }
}

/// Computes the frozen teacher's softmax outputs for every sample of
/// `subset`, in eval mode: the `Y^fc` of Eq. 10.
///
/// Call this on the full-precision model *before* installing quantization
/// transforms.
///
/// # Errors
///
/// Propagates layer errors.
pub fn teacher_probs(net: &mut Sequential, subset: &Subset, batch_size: usize) -> Result<Tensor> {
    let mut rows: Vec<Tensor> = Vec::new();
    for batch in subset.batches(batch_size.max(1)) {
        let logits = net.forward(&batch.images, Phase::Eval)?;
        rows.push(losses::softmax_rows(&logits)?);
    }
    if rows.is_empty() {
        return Ok(Tensor::zeros(&[0, 0]));
    }
    let cols = rows[0].shape()[1];
    let mut data = Vec::new();
    for r in &rows {
        data.extend_from_slice(r.as_slice());
    }
    let total = data.len() / cols;
    Ok(Tensor::from_vec(data, &[total, cols])?)
}

/// Fine-tunes the quantized student against cached teacher probabilities
/// with the Eq. 10 loss. Returns per-epoch statistics.
///
/// `teacher` must hold one row per sample of `train`, aligned by index
/// (as produced by [`teacher_probs`] on the same subset).
///
/// # Errors
///
/// Returns [`CqError::InvalidConfig`] for invalid settings or a
/// teacher/train size mismatch; propagates layer and loss errors.
pub fn refine(
    net: &mut Sequential,
    train: &Subset,
    teacher: &Tensor,
    config: &RefineConfig,
    rng: &mut impl Rng,
) -> Result<Vec<EpochStats>> {
    refine_traced(net, train, teacher, config, rng, &Telemetry::disabled())
}

/// [`refine`] with telemetry: wraps the fine-tuning in a `refine` span,
/// counts forward/backward passes, tracks the KD loss components as the
/// `refine.kd_loss.ce` / `refine.kd_loss.kl` gauges, and emits one
/// `refine.epoch` event per epoch (`info` when `config.verbose`, `debug`
/// otherwise).
///
/// When `tel` is disabled, falls back to a `CBQ_LOG`-driven stderr logger
/// so `verbose` keeps printing progress lines.
///
/// # Errors
///
/// Same as [`refine`].
pub fn refine_traced(
    net: &mut Sequential,
    train: &Subset,
    teacher: &Tensor,
    config: &RefineConfig,
    rng: &mut impl Rng,
    tel: &Telemetry,
) -> Result<Vec<EpochStats>> {
    refine_resumable(
        net,
        train,
        teacher,
        config,
        rng,
        tel,
        &FaultPlan::none(),
        None,
        None,
    )
}

/// A mid-refine snapshot: everything needed to continue fine-tuning from
/// the start of epoch `next_epoch` exactly as the uninterrupted run would
/// have (weights, optimizer momentum, and the stats collected so far).
///
/// Produced after every epoch by the `on_epoch` callback of
/// [`refine_resumable`] and accepted back as its `resume` argument.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineResume {
    /// First epoch still to run (0-based).
    pub next_epoch: usize,
    /// Student weights at the end of epoch `next_epoch - 1`.
    pub state: StateDict,
    /// SGD velocity buffers, in `visit_params` order.
    pub velocities: Vec<Tensor>,
    /// Per-epoch stats for the epochs already completed.
    pub stats: Vec<EpochStats>,
}

/// Per-epoch observer for [`refine_resumable`]: receives the snapshot
/// after each completed epoch (the pipeline persists it as the `refine`
/// checkpoint). An error aborts refining — deliberately, so a failed
/// checkpoint write surfaces instead of silently losing crash safety.
pub type OnEpoch<'a> = &'a mut dyn FnMut(&RefineResume) -> Result<()>;

/// [`refine_traced`] with crash-safety hooks: resumes from a
/// [`RefineResume`] snapshot, reports one after every completed epoch via
/// `on_epoch`, honours the numeric [`GuardPolicy`] in
/// [`RefineConfig::guard`], and threads a [`FaultPlan`] through the step
/// loop for chaos testing.
///
/// With [`RefineConfig::shuffle_seed`] set, an interrupted run resumed
/// from the snapshot replays the exact remaining epochs of the
/// uninterrupted run, bit for bit.
///
/// # Errors
///
/// Same as [`refine`], plus [`CqError::NonFinite`] when the guard policy
/// is [`GuardPolicy::Abort`] (or a halving budget runs out) and
/// [`CqError::Nn`] for a snapshot that does not fit the network.
#[allow(clippy::too_many_arguments)]
pub fn refine_resumable(
    net: &mut Sequential,
    train: &Subset,
    teacher: &Tensor,
    config: &RefineConfig,
    rng: &mut impl Rng,
    tel: &Telemetry,
    fault: &FaultPlan,
    resume: Option<RefineResume>,
    mut on_epoch: Option<OnEpoch<'_>>,
) -> Result<Vec<EpochStats>> {
    config.validate()?;
    let tel = if tel.is_enabled() {
        tel.clone()
    } else {
        Telemetry::from_env()
    };
    let n = train.len();
    if teacher.rank() != 2 || teacher.shape()[0] != n {
        return Err(CqError::InvalidConfig(format!(
            "teacher probs shape {:?} does not cover {n} training samples",
            teacher.shape()
        )));
    }
    let classes = teacher.shape()[1];
    let item_dims: Vec<usize> = train.images().shape()[1..].to_vec();
    let item_len: usize = item_dims.iter().product();
    let images = train.images().as_slice();
    let labels = train.labels();
    let tp = teacher.as_slice();

    let schedule = StepLr::new(config.lr, config.lr_milestones.clone(), config.lr_gamma);
    let mut opt = Sgd::new(SgdConfig {
        lr: config.lr,
        momentum: config.momentum,
        weight_decay: config.weight_decay,
    });
    let span = tel.span_with("refine", &[("epochs", config.epochs.into())]);
    let mut stats = Vec::with_capacity(config.epochs);
    let mut start_epoch = 0usize;
    if let Some(snapshot) = resume {
        load_state_dict(net, &snapshot.state)?;
        opt.set_velocities(snapshot.velocities);
        stats = snapshot.stats;
        start_epoch = snapshot.next_epoch.min(config.epochs);
        tel.event(
            Level::Info,
            "refine.resumed",
            &[("next_epoch", start_epoch.into())],
        );
    }
    let mut guard = GuardState::new(config.guard);
    let mut order: Vec<usize> = (0..n).collect();
    for epoch in start_epoch..config.epochs {
        opt.set_lr(schedule.lr_at(epoch) * guard.lr_scale());
        if let Some(seed) = config.shuffle_seed {
            // Pure function of (seed, epoch): reset to identity so the
            // permutation does not depend on earlier epochs' shuffles.
            order = (0..n).collect();
            let mut epoch_rng = StdRng::seed_from_u64(seed.wrapping_add(epoch as u64));
            order.shuffle(&mut epoch_rng);
        } else {
            order.shuffle(rng);
        }
        let mut loss_sum = 0.0f64;
        let mut ce_sum = 0.0f64;
        let mut kl_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            // Assemble the batch and its aligned teacher rows.
            let mut xdata = Vec::with_capacity(chunk.len() * item_len);
            let mut tdata = Vec::with_capacity(chunk.len() * classes);
            let mut blabels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                xdata.extend_from_slice(&images[i * item_len..(i + 1) * item_len]);
                tdata.extend_from_slice(&tp[i * classes..(i + 1) * classes]);
                blabels.push(labels[i]);
            }
            let mut dims = vec![chunk.len()];
            dims.extend_from_slice(&item_dims);
            let x = Tensor::from_vec(xdata, &dims)?;
            let t = Tensor::from_vec(tdata, &[chunk.len(), classes])?;

            net.zero_grad();
            let logits = net.forward(&x, Phase::Train)?;
            let parts = losses::kd_loss_parts(&logits, &t, &blabels, config.alpha)?;
            let acc = losses::accuracy(&logits, &blabels)?;
            net.backward(&parts.grad)?;
            if fault.poison_this_step() {
                poison_first_gradient(net);
            }
            if let Some(diagnosis) = non_finite_step(net, parts.loss) {
                tel.event(
                    Level::Warn,
                    "refine.guard_trip",
                    &[
                        ("epoch", epoch.into()),
                        ("trips", guard.trips().into()),
                        ("diagnosis", diagnosis.as_str().into()),
                    ],
                );
                match guard.on_trip() {
                    GuardAction::Abort => {
                        return Err(CqError::NonFinite(format!(
                            "refine epoch {epoch}: {diagnosis} (guard policy: abort)"
                        )));
                    }
                    GuardAction::SkipStep => continue,
                    GuardAction::SkipStepWithLrScale(scale) => {
                        opt.set_lr(schedule.lr_at(epoch) * scale);
                        continue;
                    }
                }
            }
            opt.step(net)?;
            loss_sum += parts.loss as f64;
            ce_sum += parts.ce as f64;
            kl_sum += parts.kl as f64;
            acc_sum += acc as f64;
            batches += 1;
        }
        tel.counter_add("refine.forward_passes", batches as u64);
        tel.counter_add("refine.backward_passes", batches as u64);
        let scale = 1.0 / batches.max(1) as f64;
        tel.gauge("refine.kd_loss.ce", ce_sum * scale);
        tel.gauge("refine.kd_loss.kl", kl_sum * scale);
        let es = EpochStats {
            epoch,
            loss: (loss_sum * scale) as f32,
            train_accuracy: (acc_sum * scale) as f32,
        };
        let level = if config.verbose {
            Level::Info
        } else {
            Level::Debug
        };
        tel.event(
            level,
            "refine.epoch",
            &[
                ("epoch", epoch.into()),
                ("kd_loss", es.loss.into()),
                ("ce", (ce_sum * scale).into()),
                ("kl", (kl_sum * scale).into()),
                ("train_accuracy", es.train_accuracy.into()),
            ],
        );
        stats.push(es);
        if let Some(cb) = on_epoch.as_deref_mut() {
            let snapshot = RefineResume {
                next_epoch: epoch + 1,
                state: state_dict(net),
                velocities: opt.velocities().to_vec(),
                stats: stats.clone(),
            };
            cb(&snapshot)?;
        }
    }
    span.end();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::{SyntheticImages, SyntheticSpec};
    use cbq_nn::{evaluate, models, Trainer, TrainerConfig};
    use cbq_quant::{install_uniform, BitWidth};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flat(sub: &Subset, f: usize) -> Subset {
        Subset::new(
            sub.images().reshape(&[sub.len(), f]).unwrap(),
            sub.labels().to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn teacher_probs_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let f = data.feature_len();
        let val = flat(data.val(), f);
        let mut net = models::mlp(&[f, 8, 3], &mut rng).unwrap();
        let t = teacher_probs(&mut net, &val, 16).unwrap();
        assert_eq!(t.shape(), &[val.len(), 3]);
        for r in 0..val.len() {
            let s: f32 = t.row(r).unwrap().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn refine_recovers_quantized_accuracy() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let f = data.feature_len();
        let train = flat(data.train(), f);
        let test = flat(data.test(), f);
        let mut net = models::mlp(&[f, 24, 12, 3], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(12, 0.05)
        };
        Trainer::new(tc).fit(&mut net, &train, &mut rng).unwrap();
        let fp_acc = evaluate(&mut net, &test, 64).unwrap();
        assert!(fp_acc > 0.8, "fp model too weak: {fp_acc}");
        let teacher = teacher_probs(&mut net, &train, 64).unwrap();
        // brutal 1-bit uniform quantization
        install_uniform(&mut net, BitWidth::new(1).unwrap());
        let hurt_acc = evaluate(&mut net, &test, 64).unwrap();
        let mut cfg = RefineConfig::quick(10, 0.02);
        cfg.batch_size = 16;
        refine(&mut net, &train, &teacher, &cfg, &mut rng).unwrap();
        let refined_acc = evaluate(&mut net, &test, 64).unwrap();
        assert!(
            refined_acc >= hurt_acc,
            "refining regressed: {hurt_acc} -> {refined_acc}"
        );
        assert!(
            refined_acc > 0.55,
            "refined accuracy too low: {refined_acc}"
        );
    }

    #[test]
    fn refine_rejects_mismatched_teacher() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let f = data.feature_len();
        let train = flat(data.train(), f);
        let mut net = models::mlp(&[f, 8, 2], &mut rng).unwrap();
        let bad_teacher = Tensor::zeros(&[3, 2]);
        let cfg = RefineConfig::quick(1, 0.01);
        assert!(refine(&mut net, &train, &bad_teacher, &cfg, &mut rng).is_err());
    }

    #[test]
    fn refine_config_validation() {
        let mut cfg = RefineConfig::quick(1, 0.01);
        cfg.alpha = 2.0;
        assert!(cfg.validate().is_err());
        cfg.alpha = 0.3;
        cfg.batch_size = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn resume_replays_uninterrupted_run_bit_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let f = data.feature_len();
        let train = flat(data.train(), f);
        let mut net = models::mlp(&[f, 16, 3], &mut rng).unwrap();
        let tc = TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(3, 0.05)
        };
        Trainer::new(tc).fit(&mut net, &train, &mut rng).unwrap();
        let teacher = teacher_probs(&mut net, &train, 64).unwrap();
        install_uniform(&mut net, BitWidth::new(2).unwrap());
        let sd0 = cbq_nn::state_dict(&mut net);

        let mut cfg = RefineConfig::quick(4, 0.02);
        cfg.batch_size = 16;
        cfg.shuffle_seed = Some(99);

        // Uninterrupted run; keep the snapshot taken after epoch 1.
        let mut snapshot: Option<RefineResume> = None;
        let mut grab = |s: &RefineResume| {
            if s.next_epoch == 2 {
                snapshot = Some(s.clone());
            }
            Ok(())
        };
        let full_stats = refine_resumable(
            &mut net,
            &train,
            &teacher,
            &cfg,
            &mut rng,
            &Telemetry::disabled(),
            &FaultPlan::none(),
            None,
            Some(&mut grab),
        )
        .unwrap();
        let full_bytes = cbq_nn::state_dict(&mut net).to_bytes();
        let snapshot = snapshot.expect("snapshot after epoch 1");

        // Crash-and-resume: fresh weights, then continue from the snapshot.
        cbq_nn::load_state_dict(&mut net, &sd0).unwrap();
        let resumed_stats = refine_resumable(
            &mut net,
            &train,
            &teacher,
            &cfg,
            &mut rng,
            &Telemetry::disabled(),
            &FaultPlan::none(),
            Some(snapshot),
            None,
        )
        .unwrap();
        let resumed_bytes = cbq_nn::state_dict(&mut net).to_bytes();
        assert_eq!(full_bytes, resumed_bytes, "resumed weights diverged");
        assert_eq!(&full_stats[2..], &resumed_stats[2..]);
    }

    #[test]
    fn fault_poison_trips_abort_guard() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let f = data.feature_len();
        let train = flat(data.train(), f);
        let mut net = models::mlp(&[f, 8, 2], &mut rng).unwrap();
        let teacher = teacher_probs(&mut net, &train, 64).unwrap();
        let cfg = RefineConfig::quick(1, 0.01);
        let fault = FaultPlan::none().poison_gradient_at_step(0);
        let err = refine_resumable(
            &mut net,
            &train,
            &teacher,
            &cfg,
            &mut rng,
            &Telemetry::disabled(),
            &fault,
            None,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, CqError::NonFinite(_)), "got {err}");
    }

    #[test]
    fn fault_poison_skipped_with_skip_batch_policy() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let f = data.feature_len();
        let train = flat(data.train(), f);
        let mut net = models::mlp(&[f, 8, 2], &mut rng).unwrap();
        let teacher = teacher_probs(&mut net, &train, 64).unwrap();
        let mut cfg = RefineConfig::quick(1, 0.01);
        cfg.guard = GuardPolicy::SkipBatch;
        let fault = FaultPlan::none().poison_gradient_at_step(0);
        let stats = refine_resumable(
            &mut net,
            &train,
            &teacher,
            &cfg,
            &mut rng,
            &Telemetry::disabled(),
            &fault,
            None,
            None,
        )
        .unwrap();
        assert_eq!(stats.len(), 1);
        let mut finite = true;
        net.visit_params(&mut |p| {
            finite &= p.value.as_slice().iter().all(|v| v.is_finite());
        });
        assert!(finite, "weights corrupted despite skip-batch guard");
    }

    #[test]
    fn teacher_probs_empty_subset() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = models::mlp(&[4, 2], &mut rng).unwrap();
        let empty = Subset::new(Tensor::zeros(&[0, 4]), vec![]).unwrap();
        let t = teacher_probs(&mut net, &empty, 8).unwrap();
        assert_eq!(t.len(), 0);
    }
}
