//! The bit-width threshold search (paper §III-C).
//!
//! Filters start at the maximum width `N`. Global score thresholds
//! `p_1 ≤ … ≤ p_N` partition filters into bit groups: below `p_1` → 0 bits
//! (pruned), between `p_k` and `p_{k+1}` → `k` bits, at or above `p_N` →
//! `N` bits. Phase 1 moves each threshold upward in steps of `D` until the
//! validation accuracy falls below its target `T_k = T_{k-1}·R`; phase 2
//! squeezes thresholds from `p_N` down to `p_1` toward the maximum score
//! until the average bit-width reaches the user's target `B`.

use crate::{CqError, ImportanceScores, Result};
use cbq_data::Subset;
use cbq_nn::{evaluate_with_scratch, Sequential};
use cbq_quant::{install_arrangement, BitArrangement, BitWidth, UnitArrangement};
use cbq_resilience::{BudgetExhausted, BudgetTracker, SearchBudget};
use cbq_telemetry::{Level, Telemetry};
use cbq_tensor::parallel::{parallel_map_with, Parallelism};
use cbq_tensor::Scratch;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bit-allocation granularity.
///
/// The paper argues filter-level allocation (its contribution) beats the
/// layer-level allocation of e.g. HAQ; [`Granularity::PerLayer`] exists
/// to reproduce that comparison with everything else held equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Granularity {
    /// One bit-width per filter/neuron (the paper's method).
    #[default]
    PerFilter,
    /// One bit-width per layer: every filter of a unit shares the width
    /// derived from the layer's maximum filter score.
    PerLayer,
}

/// Configuration for the threshold search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Target average bit-width `B` over all quantized weights.
    pub target_avg_bits: f32,
    /// Highest bit-width `N` in the search range `{0, …, N}` (the paper's
    /// example uses 4).
    pub max_bits: u8,
    /// Threshold step `D`.
    pub step: f64,
    /// Initial target accuracy `T_1` (the paper's example uses 50 %).
    pub t1: f32,
    /// Decay factor `R ∈ [0, 1]` with `T_k = T_{k-1}·R` (0.8 in the
    /// paper's example).
    pub decay: f32,
    /// Validation samples used per accuracy probe.
    pub probe_samples: usize,
    /// Batch size for accuracy probes.
    pub batch_size: usize,
    /// Allocation granularity (per-filter is the paper's method).
    pub granularity: Granularity,
    /// Optional cap on accuracy probes; when hit the search ends
    /// gracefully with the best thresholds found so far (one final
    /// reporting probe still runs to measure the chosen arrangement).
    #[serde(default)]
    pub max_probes: Option<u64>,
    /// Optional wall-clock deadline in seconds, same graceful semantics.
    #[serde(default)]
    pub max_seconds: Option<f64>,
}

impl SearchConfig {
    /// The paper's example setup: range `{0..4}`, `T_1 = 50 %`, `R = 0.8`,
    /// step 0.1, toward the given average bit target.
    pub fn new(target_avg_bits: f32) -> Self {
        SearchConfig {
            target_avg_bits,
            max_bits: 4,
            step: 0.1,
            t1: 0.5,
            decay: 0.8,
            probe_samples: 200,
            batch_size: 100,
            granularity: Granularity::PerFilter,
            max_probes: None,
            max_seconds: None,
        }
    }

    /// The budget implied by `max_probes` / `max_seconds`.
    pub fn budget(&self) -> SearchBudget {
        SearchBudget {
            max_probes: self.max_probes,
            max_seconds: self.max_seconds,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.max_bits == 0 || self.max_bits > 8 {
            return Err(CqError::InvalidConfig("max_bits must be in 1..=8".into()));
        }
        if !(self.step.is_finite() && self.step > 0.0) {
            return Err(CqError::InvalidConfig("step must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.t1) || !(0.0..=1.0).contains(&self.decay) {
            return Err(CqError::InvalidConfig(
                "t1 and decay must lie in [0, 1]".into(),
            ));
        }
        if self.target_avg_bits < 0.0 || self.target_avg_bits > self.max_bits as f32 {
            return Err(CqError::InvalidConfig(format!(
                "target_avg_bits {} outside [0, {}]",
                self.target_avg_bits, self.max_bits
            )));
        }
        if self.probe_samples == 0 || self.batch_size == 0 {
            return Err(CqError::InvalidConfig(
                "probe_samples and batch_size must be positive".into(),
            ));
        }
        if self.max_probes == Some(0) {
            return Err(CqError::InvalidConfig(
                "max_probes of 0 would end the search before the first probe".into(),
            ));
        }
        if let Some(s) = self.max_seconds {
            if !(s.is_finite() && s > 0.0) {
                return Err(CqError::InvalidConfig(format!(
                    "max_seconds {s} must be positive and finite"
                )));
            }
        }
        Ok(())
    }
}

/// One probe during the search, recorded for Figure 3-style traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchStep {
    /// Which threshold was moving (0-based: `p_{k+1}`).
    pub threshold_index: usize,
    /// Threshold position at this probe.
    pub threshold: f64,
    /// Probe accuracy (phase 1) or `None`-equivalent `-1.0` for phase-2
    /// steps, which do not evaluate accuracy.
    pub accuracy: f32,
    /// Average bit-width of the implied arrangement.
    pub avg_bits: f32,
    /// `true` for phase-2 (squeeze) steps.
    pub squeeze: bool,
}

/// Per-threshold summary of the search trace, precomputed so diagnostics
/// (e.g. the Figure 3 regeneration) need not re-walk the raw trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThresholdSummary {
    /// 0-based threshold index (`p_{k+1}`).
    pub threshold_index: usize,
    /// Phase-1 accuracy probes spent on this threshold.
    pub probes: usize,
    /// Phase-2 squeeze moves applied to this threshold.
    pub squeeze_moves: usize,
    /// Final threshold position.
    pub final_position: f64,
    /// Accuracy of the last phase-1 probe for this threshold (-1.0 when
    /// it was never probed).
    pub last_probe_accuracy: f32,
}

/// The result of a threshold search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Final threshold positions `p_1 … p_N`.
    pub thresholds: Vec<f64>,
    /// Final per-filter arrangement (already installed on the network).
    pub arrangement: BitArrangement,
    /// Probe trace for diagnostics and Figure 3.
    pub trace: Vec<SearchStep>,
    /// Average bit-width of the final arrangement.
    pub final_avg_bits: f32,
    /// Validation accuracy of the final (unrefined) arrangement.
    pub final_probe_accuracy: f32,
    /// Accuracy probes actually evaluated (phase-1 moves plus the final
    /// probe, *excluding* probe-cache hits — see
    /// [`SearchOutcome::probe_cache_hits`]). `#[serde(default)]` keeps
    /// pre-telemetry results loadable.
    #[serde(default)]
    pub probe_count: usize,
    /// Moves answered from the probe cache instead of a fresh evaluation:
    /// an arrangement already measured this search (including the final
    /// post-squeeze probe when phase 1 saw the same arrangement).
    #[serde(default)]
    pub probe_cache_hits: usize,
    /// Per-threshold digest of the trace.
    #[serde(default)]
    pub threshold_summaries: Vec<ThresholdSummary>,
    /// Why the budget ended the search early, when it did (`None` for a
    /// search that ran to completion).
    #[serde(default)]
    pub budget_exhausted: Option<String>,
}

/// Builds the per-threshold digest from the raw trace and the final
/// threshold positions.
fn summarize_thresholds(trace: &[SearchStep], thresholds: &[f64]) -> Vec<ThresholdSummary> {
    let mut summaries: Vec<ThresholdSummary> = thresholds
        .iter()
        .enumerate()
        .map(|(k, &p)| ThresholdSummary {
            threshold_index: k,
            final_position: p,
            last_probe_accuracy: -1.0,
            ..ThresholdSummary::default()
        })
        .collect();
    for step in trace {
        let Some(s) = summaries.get_mut(step.threshold_index) else {
            continue;
        };
        if step.squeeze {
            s.squeeze_moves += 1;
        } else {
            s.probes += 1;
            s.last_probe_accuracy = step.accuracy;
        }
    }
    summaries
}

/// Exact identity of a quantization arrangement, used as the probe-cache
/// key: every unit's name with its full per-filter bit map.
///
/// The key *is* the bit map — not a hash digest — so two distinct
/// arrangements can never collide; equal arrangements (however reached)
/// always produce equal keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProbeKey(Vec<(String, Vec<u8>)>);

impl ProbeKey {
    /// Builds the key for an arrangement.
    pub fn of(arr: &BitArrangement) -> Self {
        ProbeKey(
            arr.units()
                .iter()
                .map(|u| (u.name.clone(), u.bits.iter().map(|b| b.bits()).collect()))
                .collect(),
        )
    }
}

/// Memoizes probe accuracies by exact arrangement.
///
/// Probe accuracy is a pure function of the (fixed) weights, the probe
/// set, and the arrangement — [`install_arrangement`] installs stateless
/// per-filter transforms that recompute from the shadow weights on every
/// forward — which is what makes memoization sound. The search consults
/// the cache before every committed move, so a threshold step that lands
/// on an already-measured arrangement (common when a step does not cross
/// any filter score), and the final post-squeeze probe, never re-evaluate.
#[derive(Debug, Default)]
pub struct ProbeCache {
    map: HashMap<ProbeKey, f32>,
}

impl ProbeCache {
    /// An empty cache.
    pub fn new() -> Self {
        ProbeCache::default()
    }

    /// The memoized accuracy for `key`, if this arrangement was measured.
    pub fn get(&self, key: &ProbeKey) -> Option<f32> {
        self.map.get(key).copied()
    }

    /// Records a measured accuracy.
    pub fn insert(&mut self, key: ProbeKey, accuracy: f32) {
        self.map.insert(key, accuracy);
    }

    /// Number of distinct arrangements measured.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no arrangement has been measured yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Maps filter scores to bit-widths given the currently-determined
/// thresholds (non-decreasing). With `j` thresholds determined, a filter
/// scores `0` bits below `p_1`, `i` bits in `[p_i, p_{i+1})`, and `N`
/// bits at or above `p_j`.
fn bits_for_score(phi: f64, thresholds: &[f64], max_bits: u8) -> BitWidth {
    let determined = thresholds.len();
    if determined == 0 {
        return BitWidth::new(max_bits).expect("validated max_bits");
    }
    let mut below = 0usize;
    for &t in thresholds {
        if phi < t {
            break;
        }
        below += 1;
    }
    // `below` thresholds are <= phi. 0 passed → 0 bits; all passed → N.
    if below == determined {
        BitWidth::new(max_bits).expect("validated max_bits")
    } else {
        BitWidth::new(below as u8).expect("below < determined <= max_bits")
    }
}

/// Builds the arrangement implied by the thresholds.
fn arrangement_from(
    scores: &ImportanceScores,
    thresholds: &[f64],
    max_bits: u8,
    granularity: Granularity,
) -> BitArrangement {
    let mut arr = BitArrangement::new();
    for unit in &scores.units {
        let bits: Vec<BitWidth> = match granularity {
            Granularity::PerFilter => unit
                .phi
                .iter()
                .map(|&p| bits_for_score(p, thresholds, max_bits))
                .collect(),
            Granularity::PerLayer => {
                let layer_score = unit.phi.iter().copied().fold(0.0f64, f64::max);
                vec![bits_for_score(layer_score, thresholds, max_bits); unit.phi.len()]
            }
        };
        arr.push(UnitArrangement {
            name: unit.name.clone(),
            bits,
            weights_per_filter: unit.weights_per_filter,
        });
    }
    arr
}

/// Runs the §III-C threshold search on a scored network.
///
/// On return the final arrangement is installed on `net` (weights
/// fake-quantized accordingly); refining (§III-D) is a separate step.
///
/// # Example
///
/// ```no_run
/// use cbq_core::{score_network, search, ScoreConfig, SearchConfig};
/// use cbq_data::{SyntheticImages, SyntheticSpec};
/// use cbq_nn::models;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(0);
/// let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng)?;
/// let mut net = models::mlp(&[data.feature_len(), 16, 8, 3], &mut rng)?;
/// // ... train `net` first ...
/// let scores = score_network(&mut net, data.val(), 3, &ScoreConfig::new())?;
/// let outcome = search(&mut net, &scores, data.val(), &SearchConfig::new(2.0))?;
/// assert!(outcome.final_avg_bits <= 2.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`CqError::InvalidConfig`] for invalid settings,
/// [`CqError::ScoreMismatch`] when `scores` do not match `net`, or
/// propagates evaluation errors.
pub fn search(
    net: &mut Sequential,
    scores: &ImportanceScores,
    val: &Subset,
    config: &SearchConfig,
) -> Result<SearchOutcome> {
    search_traced(net, scores, val, config, &Telemetry::disabled())
}

/// [`search`] with telemetry: wraps the phases in `search` /
/// `search.phase1` / `search.phase2` spans, counts `search.probes`,
/// `probe.forward_passes` and `search.squeeze_steps`, and tracks the
/// moving average bit-width as the `search.avg_bits` gauge.
///
/// # Errors
///
/// Same as [`search`].
pub fn search_traced(
    net: &mut Sequential,
    scores: &ImportanceScores,
    val: &Subset,
    config: &SearchConfig,
    tel: &Telemetry,
) -> Result<SearchOutcome> {
    search_with(net, scores, val, config, tel, Parallelism::auto())
}

/// [`search_traced`] with an explicit worker budget.
///
/// Phase-1 probes are evaluated speculatively: the next `par.threads()`
/// candidate positions of the moving threshold are measured concurrently,
/// each on a private clone of `net` paired with a private scratch arena
/// (probing is read-only — the installed transforms are stateless and
/// recompute from the shadow weights, so a probe's accuracy does not
/// depend on which network evaluated it). Probes run at `Phase::Infer`
/// via [`evaluate_with_scratch`], which produces bit-identical logits to
/// an `Eval`-mode forward while reusing pooled buffers, so steady-state
/// probes allocate nothing on the heap in the forward path. The
/// results are then *committed strictly in candidate order*, applying the
/// serial stopping rules; anything a stop discards never reaches the probe
/// cache, `probe_count`, or the probe budget. The committed sequence —
/// thresholds, trace, probe counts, cache hits — is therefore
/// bit-identical at any thread count; only wall-clock time changes (which
/// is why a `max_seconds` budget remains the one nondeterministic input).
///
/// # Errors
///
/// Same as [`search`].
pub fn search_with(
    net: &mut Sequential,
    scores: &ImportanceScores,
    val: &Subset,
    config: &SearchConfig,
    tel: &Telemetry,
    par: Parallelism,
) -> Result<SearchOutcome> {
    config.validate()?;
    if scores.units.is_empty() {
        return Err(CqError::ScoreMismatch("no scored units".into()));
    }
    let n = config.max_bits;
    let threads = par.threads().max(1);
    let max_score = scores.max_phi().max(config.step);
    let probe_set = val.head(config.probe_samples)?;
    // Forward passes (batches) per accuracy probe.
    let batches_per_probe = probe_set.len().div_ceil(config.batch_size.max(1)) as u64;
    let mut trace: Vec<SearchStep> = Vec::new();
    let mut determined: Vec<f64> = Vec::new();
    let mut probe_count = 0usize;
    let mut cache = ProbeCache::new();
    let mut cache_hits = 0usize;
    let mut speculative_evals = 0u64;
    let mut busy_s = 0.0f64;
    let mut tracker = BudgetTracker::start(config.budget());
    let mut budget_exhausted: Option<String> = None;
    let report_exhaustion = |reason: &BudgetExhausted| {
        tel.event(
            Level::Warn,
            "search.budget_exhausted",
            &[("reason", reason.to_string().into())],
        );
    };

    let t_search = tel.elapsed_s();
    let search_span = tel.span_with(
        "search",
        &[
            ("target_avg_bits", config.target_avg_bits.into()),
            ("max_bits", config.max_bits.into()),
            ("threads", threads.into()),
        ],
    );
    let probe = |net: &mut Sequential,
                 arr: &BitArrangement,
                 count: &mut usize,
                 tracker: &mut BudgetTracker,
                 scratch: &mut Scratch|
     -> Result<f32> {
        install_arrangement(net, arr)?;
        let acc = evaluate_with_scratch(net, &probe_set, config.batch_size, scratch)?;
        *count += 1;
        tracker.record_probe();
        tel.counter_add("search.probes", 1);
        tel.counter_add("search.probe_cache_misses", 1);
        tel.counter_add("probe.forward_passes", batches_per_probe);
        Ok(acc)
    };

    // Worker clones for speculative probes (one suffices when serial).
    // Each worker owns a scratch arena: the first probe fills its buffer
    // pool and every later probe on that worker reuses the pooled
    // buffers, so steady-state probes perform no heap allocation in the
    // forward path. Probes run at `Phase::Infer` through
    // `evaluate_with_scratch` — bit-identical logits to the former
    // `Phase::Eval` evaluation, minus the intermediate caching.
    let mut probe_workers: Vec<(Sequential, Scratch)> = (0..threads)
        .map(|_| (net.clone(), Scratch::new()))
        .collect();
    let mut final_scratch = Scratch::new();

    // Phase 1: move each threshold upward until its accuracy target is
    // violated or the average bit target is met.
    let phase1 = tel.span("search.phase1");
    let mut target = config.t1;
    'outer: for k in 0..n as usize {
        let mut p = determined.last().copied().unwrap_or(0.0);
        'threshold: loop {
            if let Some(reason) = tracker.exhausted() {
                report_exhaustion(&reason);
                budget_exhausted = Some(reason.to_string());
                determined.push(p);
                break 'outer;
            }
            // The speculative window: the next `threads` candidate
            // positions, generated by the same chained additions the
            // serial path performs (p + step, then + step again, …) so
            // the committed positions are bitwise the serial ones.
            let mut cands: Vec<f64> = Vec::new();
            {
                let mut c = p;
                while cands.len() < threads {
                    c += config.step;
                    if c > max_score + config.step {
                        break;
                    }
                    cands.push(c);
                }
            }
            if cands.is_empty() {
                break 'threshold; // ran off the top of the score range
            }
            let trials: Vec<(f64, BitArrangement, f32, ProbeKey)> = cands
                .iter()
                .map(|&candidate| {
                    let mut trial = determined.clone();
                    trial.push(candidate);
                    let arr = arrangement_from(scores, &trial, n, config.granularity);
                    let avg = arr.average_bits();
                    let key = ProbeKey::of(&arr);
                    (candidate, arr, avg, key)
                })
                .collect();
            // Evaluate the window's unseen arrangements concurrently.
            let mut pending: Vec<(ProbeKey, &BitArrangement)> = Vec::new();
            for (_, arr, _, key) in &trials {
                if cache.get(key).is_none() && pending.iter().all(|(seen, _)| seen != key) {
                    pending.push((key.clone(), arr));
                }
            }
            let mut speculative: HashMap<ProbeKey, f32> = HashMap::new();
            if !pending.is_empty() {
                let states: Vec<&mut (Sequential, Scratch)> =
                    probe_workers.iter_mut().take(pending.len()).collect();
                let pending_ref = &pending;
                let probe_set_ref = &probe_set;
                let batch_size = config.batch_size;
                let evals: Vec<Result<(f32, f64)>> =
                    parallel_map_with(states, pending.len(), move |worker, i| {
                        let clock = std::time::Instant::now();
                        let (worker_net, worker_scratch) = &mut **worker;
                        install_arrangement(worker_net, pending_ref[i].1)?;
                        let acc = evaluate_with_scratch(
                            worker_net,
                            probe_set_ref,
                            batch_size,
                            worker_scratch,
                        )?;
                        Ok((acc, clock.elapsed().as_secs_f64()))
                    });
                speculative_evals += pending.len() as u64;
                tel.counter_add(
                    "probe.forward_passes",
                    batches_per_probe * pending.len() as u64,
                );
                for (i, e) in evals.into_iter().enumerate() {
                    let (acc, secs) = e?;
                    busy_s += secs;
                    speculative.insert(pending[i].0.clone(), acc);
                }
            }
            // Commit strictly in candidate order, applying the serial
            // stopping rules; results past a stop are discarded unseen.
            for (ci, (candidate, _, avg, key)) in trials.iter().enumerate() {
                if ci > 0 {
                    if let Some(reason) = tracker.exhausted() {
                        report_exhaustion(&reason);
                        budget_exhausted = Some(reason.to_string());
                        determined.push(p);
                        break 'outer;
                    }
                }
                let acc = match cache.get(key) {
                    Some(acc) => {
                        cache_hits += 1;
                        tel.counter_add("search.probe_cache_hits", 1);
                        acc
                    }
                    None => {
                        let acc = *speculative
                            .get(key)
                            .expect("window candidate was evaluated");
                        probe_count += 1;
                        tracker.record_probe();
                        cache.insert(key.clone(), acc);
                        tel.counter_add("search.probes", 1);
                        tel.counter_add("search.probe_cache_misses", 1);
                        acc
                    }
                };
                tel.gauge("search.avg_bits", *avg as f64);
                tel.trace(
                    "search.move",
                    &[
                        ("threshold_index", k.into()),
                        ("threshold", (*candidate).into()),
                        ("accuracy", acc.into()),
                        ("avg_bits", (*avg).into()),
                    ],
                );
                trace.push(SearchStep {
                    threshold_index: k,
                    threshold: *candidate,
                    accuracy: acc,
                    avg_bits: *avg,
                    squeeze: false,
                });
                p = *candidate;
                if acc < target {
                    break 'threshold; // p_k determined where accuracy fell
                }
                if *avg <= config.target_avg_bits {
                    determined.push(p);
                    break 'outer;
                }
            }
        }
        determined.push(p);
        tel.debug(
            "search.threshold_determined",
            &[
                ("threshold_index", k.into()),
                ("position", p.into()),
                ("target_accuracy", target.into()),
            ],
        );
        target *= config.decay;
        let arr = arrangement_from(scores, &determined, n, config.granularity);
        if arr.average_bits() <= config.target_avg_bits {
            break;
        }
    }
    phase1.end();
    // Undetermined thresholds collapse onto the last determined position.
    while determined.len() < n as usize {
        let last = determined.last().copied().unwrap_or(0.0);
        determined.push(last);
    }

    // Phase 2: if the average is still above target, squeeze p_N … p_1
    // upward toward the maximum score (no accuracy checks, §III-C).
    let mut arr = arrangement_from(scores, &determined, n, config.granularity);
    if arr.average_bits() > config.target_avg_bits {
        let phase2 = tel.span("search.phase2");
        'squeeze: for k in (0..n as usize).rev() {
            let cap = if k + 1 < n as usize {
                determined[k + 1]
            } else {
                max_score + config.step
            };
            while determined[k] < cap {
                // Squeeze moves are probe-free, so only the wall-clock
                // budget can end phase 2 early.
                if budget_exhausted.is_none() {
                    if let Some(reason @ BudgetExhausted::WallClock { .. }) = tracker.exhausted() {
                        report_exhaustion(&reason);
                        budget_exhausted = Some(reason.to_string());
                        break 'squeeze;
                    }
                }
                determined[k] = (determined[k] + config.step).min(cap);
                arr = arrangement_from(scores, &determined, n, config.granularity);
                tel.counter_add("search.squeeze_steps", 1);
                tel.gauge("search.avg_bits", arr.average_bits() as f64);
                trace.push(SearchStep {
                    threshold_index: k,
                    threshold: determined[k],
                    accuracy: -1.0,
                    avg_bits: arr.average_bits(),
                    squeeze: true,
                });
                if arr.average_bits() <= config.target_avg_bits {
                    break 'squeeze;
                }
            }
        }
        phase2.end();
    }

    // Final probe of the chosen arrangement. A cache hit (phase 1 already
    // measured this exact arrangement) skips the evaluation but still
    // installs the arrangement on the network, which is the search's
    // on-return contract.
    let final_key = ProbeKey::of(&arr);
    let final_acc = match cache.get(&final_key) {
        Some(acc) => {
            cache_hits += 1;
            tel.counter_add("search.probe_cache_hits", 1);
            install_arrangement(net, &arr)?;
            acc
        }
        None => {
            let clock = std::time::Instant::now();
            let acc = probe(
                net,
                &arr,
                &mut probe_count,
                &mut tracker,
                &mut final_scratch,
            )?;
            busy_s += clock.elapsed().as_secs_f64();
            speculative_evals += 1;
            cache.insert(final_key, acc);
            acc
        }
    };
    tel.gauge("search.avg_bits", arr.average_bits() as f64);
    tel.counter_add(
        "search.speculative_wasted",
        speculative_evals.saturating_sub(probe_count as u64),
    );
    let wall_s = tel.elapsed_s() - t_search;
    if wall_s > 0.0 && busy_s > 0.0 {
        // Sum of per-probe compute time over wall time ≈ achieved speedup
        // vs evaluating the same probes serially.
        tel.gauge("search.parallel_speedup_est", busy_s / wall_s);
    }
    search_span.end();
    let threshold_summaries = summarize_thresholds(&trace, &determined);
    Ok(SearchOutcome {
        thresholds: determined,
        final_avg_bits: arr.average_bits(),
        final_probe_accuracy: final_acc,
        arrangement: arr,
        trace,
        probe_count,
        probe_cache_hits: cache_hits,
        threshold_summaries,
        budget_exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::importance::UnitScores;

    fn bw(b: u8) -> BitWidth {
        BitWidth::new(b).unwrap()
    }

    fn fake_scores(phi: Vec<f64>) -> ImportanceScores {
        let n = phi.len();
        ImportanceScores {
            num_classes: 10,
            units: vec![UnitScores {
                name: "u".into(),
                tap: "relu".into(),
                out_channels: n,
                weights_per_filter: 4,
                neurons_per_filter: 1,
                gamma: phi.clone(),
                phi,
                beta_filter: vec![],
            }],
        }
    }

    #[test]
    fn bits_for_score_partitions() {
        let thresholds = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(bits_for_score(0.5, &thresholds, 4), bw(0));
        assert_eq!(bits_for_score(1.0, &thresholds, 4), bw(1));
        assert_eq!(bits_for_score(1.9, &thresholds, 4), bw(1));
        assert_eq!(bits_for_score(2.5, &thresholds, 4), bw(2));
        assert_eq!(bits_for_score(3.5, &thresholds, 4), bw(3));
        assert_eq!(bits_for_score(4.0, &thresholds, 4), bw(4));
        assert_eq!(bits_for_score(9.0, &thresholds, 4), bw(4));
    }

    #[test]
    fn no_thresholds_means_max_bits() {
        assert_eq!(bits_for_score(0.0, &[], 4), bw(4));
    }

    #[test]
    fn partial_thresholds_jump_to_max() {
        // only p_1 determined: below it 0 bits, above it N bits
        let t = [2.0];
        assert_eq!(bits_for_score(1.0, &t, 4), bw(0));
        assert_eq!(bits_for_score(2.0, &t, 4), bw(4));
    }

    #[test]
    fn arrangement_from_respects_scores() {
        let scores = fake_scores(vec![0.5, 1.5, 2.5, 3.5, 4.5]);
        let arr = arrangement_from(&scores, &[1.0, 2.0, 3.0, 4.0], 4, Granularity::PerFilter);
        let bits: Vec<u8> = arr.units()[0].bits.iter().map(|b| b.bits()).collect();
        assert_eq!(bits, vec![0, 1, 2, 3, 4]);
        // avg = (0+1+2+3+4)/5 = 2.0
        assert!((arr.average_bits() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn config_validation() {
        assert!(SearchConfig {
            max_bits: 0,
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            max_bits: 9,
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            step: 0.0,
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            t1: 1.5,
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            decay: -0.1,
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig::new(9.0).validate().is_err());
        assert!(SearchConfig {
            probe_samples: 0,
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig::new(2.0).validate().is_ok());
    }

    #[test]
    fn budget_config_validation() {
        assert!(SearchConfig {
            max_probes: Some(0),
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            max_seconds: Some(0.0),
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            max_seconds: Some(f64::NAN),
            ..SearchConfig::new(2.0)
        }
        .validate()
        .is_err());
        let limited = SearchConfig {
            max_probes: Some(5),
            max_seconds: Some(1.0),
            ..SearchConfig::new(2.0)
        };
        assert!(limited.validate().is_ok());
        assert!(limited.budget().is_limited());
        assert!(!SearchConfig::new(2.0).budget().is_limited());
    }

    #[test]
    fn per_layer_granularity_gives_uniform_bits_within_units() {
        let scores = fake_scores(vec![0.5, 1.5, 2.5, 3.5, 4.5]);
        let arr = arrangement_from(&scores, &[1.0, 2.0, 3.0, 4.0], 4, Granularity::PerLayer);
        // layer score = max phi = 4.5 -> 4 bits for every filter
        assert!(arr.units()[0].bits.iter().all(|b| b.bits() == 4));
    }

    #[test]
    fn granularity_default_is_per_filter() {
        assert_eq!(Granularity::default(), Granularity::PerFilter);
        assert_eq!(SearchConfig::new(2.0).granularity, Granularity::PerFilter);
    }

    #[test]
    fn probe_keys_equal_iff_arrangements_equal() {
        let scores = fake_scores(vec![0.5, 1.5, 2.5, 3.5, 4.5]);
        let a = arrangement_from(&scores, &[1.0, 2.0, 3.0, 4.0], 4, Granularity::PerFilter);
        // Same bit map reached through different threshold positions that
        // cross the same filter scores → equal keys.
        let b = arrangement_from(&scores, &[0.9, 1.9, 2.9, 3.9], 4, Granularity::PerFilter);
        assert_eq!(a.units()[0].bits, b.units()[0].bits);
        assert_eq!(ProbeKey::of(&a), ProbeKey::of(&b));
        // A threshold move that crosses a filter score changes a bit →
        // keys must differ (full bit map, no collisions possible).
        let c = arrangement_from(&scores, &[1.6, 2.0, 3.0, 4.0], 4, Granularity::PerFilter);
        assert_ne!(a.units()[0].bits, c.units()[0].bits);
        assert_ne!(ProbeKey::of(&a), ProbeKey::of(&c));
    }

    #[test]
    fn probe_cache_returns_recorded_accuracy() {
        let scores = fake_scores(vec![0.5, 1.5, 2.5]);
        let arr = arrangement_from(&scores, &[1.0, 2.0], 4, Granularity::PerFilter);
        let mut cache = ProbeCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&ProbeKey::of(&arr)), None);
        cache.insert(ProbeKey::of(&arr), 0.875);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&ProbeKey::of(&arr)), Some(0.875));
        // Re-inserting the same arrangement overwrites, not duplicates.
        cache.insert(ProbeKey::of(&arr), 0.5);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&ProbeKey::of(&arr)), Some(0.5));
    }

    // End-to-end search behaviour is covered by the integration tests in
    // /tests and the pipeline tests, where a trained network exists.
}
