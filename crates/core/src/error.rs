use std::error::Error;
use std::fmt;

/// Error produced by the class-based quantization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CqError {
    /// A network operation failed.
    Nn(cbq_nn::NnError),
    /// A quantization operation failed.
    Quant(cbq_quant::QuantError),
    /// A dataset operation failed.
    Data(cbq_data::DataError),
    /// A tensor operation failed.
    Tensor(cbq_tensor::TensorError),
    /// A configuration field is out of range.
    InvalidConfig(String),
    /// The scored units do not match the network's quantizable layers.
    ScoreMismatch(String),
    /// A checkpoint or atomic-write operation failed.
    Resilience(cbq_resilience::ResilienceError),
    /// A phase-boundary numeric guard found NaN/Inf.
    NonFinite(String),
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::Nn(e) => write!(f, "network error: {e}"),
            CqError::Quant(e) => write!(f, "quantization error: {e}"),
            CqError::Data(e) => write!(f, "data error: {e}"),
            CqError::Tensor(e) => write!(f, "tensor error: {e}"),
            CqError::InvalidConfig(msg) => write!(f, "invalid cq config: {msg}"),
            CqError::ScoreMismatch(msg) => write!(f, "score mismatch: {msg}"),
            CqError::Resilience(e) => write!(f, "resilience error: {e}"),
            CqError::NonFinite(msg) => write!(f, "non-finite values: {msg}"),
        }
    }
}

impl Error for CqError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CqError::Nn(e) => Some(e),
            CqError::Quant(e) => Some(e),
            CqError::Data(e) => Some(e),
            CqError::Tensor(e) => Some(e),
            CqError::Resilience(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cbq_nn::NnError> for CqError {
    fn from(e: cbq_nn::NnError) -> Self {
        CqError::Nn(e)
    }
}

impl From<cbq_quant::QuantError> for CqError {
    fn from(e: cbq_quant::QuantError) -> Self {
        CqError::Quant(e)
    }
}

impl From<cbq_data::DataError> for CqError {
    fn from(e: cbq_data::DataError) -> Self {
        CqError::Data(e)
    }
}

impl From<cbq_tensor::TensorError> for CqError {
    fn from(e: cbq_tensor::TensorError) -> Self {
        CqError::Tensor(e)
    }
}

impl From<cbq_resilience::ResilienceError> for CqError {
    fn from(e: cbq_resilience::ResilienceError) -> Self {
        CqError::Resilience(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e = CqError::from(cbq_tensor::TensorError::Empty);
        assert!(e.to_string().contains("tensor"));
        assert!(Error::source(&e).is_some());
        let e = CqError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
        assert!(Error::source(&e).is_none());
    }
}
