//! Re-quantization against an *observed* class mix (the actuation half of
//! the drift loop).
//!
//! The offline pipeline optimizes the bit arrangement for the class mix
//! of the training distribution. When serving telemetry shows the live
//! mix has drifted, [`requant_for_mix`] re-runs the paper's two search
//! inputs against the observed traffic instead:
//!
//! - importance scores are computed with each class's `β` contribution
//!   weighted by its observed share ([`mix_weights`] +
//!   [`score_network_mix`]), so the class-weighted objective follows the
//!   deployment, not the training set;
//! - the threshold search probes accuracy on a validation subset
//!   apportioned to the observed mix ([`mix_probe_indices`]), so "does
//!   this arrangement still classify well?" is answered on the traffic
//!   actually arriving.
//!
//! Everything here is deterministic: weights are exact ratios of integer
//! counts, probe slots are apportioned by the largest-remainder method
//! with index-order tie-breaking, and the underlying scorer/search are
//! already bit-exact at any thread count.

use crate::{
    score_network_mix, search_with, CqError, ImportanceScores, Result, ScoreConfig, SearchConfig,
    SearchOutcome,
};
use cbq_data::Subset;
use cbq_nn::Sequential;
use cbq_telemetry::Telemetry;
use cbq_tensor::parallel::Parallelism;

/// Everything one mix-directed re-quantization produced.
#[derive(Debug, Clone)]
pub struct MixRequant {
    /// The class weights derived from the observed counts (mean 1).
    pub weights: Vec<f64>,
    /// Mix-weighted importance scores (Eqs. 5–8 with weighted Eq. 7).
    pub scores: ImportanceScores,
    /// The search outcome on the mix-apportioned probe subset; its
    /// `arrangement` is the candidate bit allocation.
    pub search: SearchOutcome,
}

/// Converts observed per-class request counts into scoring weights
/// normalized to mean 1: `w[c] = counts[c] · M / Σ counts`.
///
/// Mean-1 normalization keeps the weighted `γ` bounded by the class count
/// `M` (`γ = Σ_c w[c]·β_c ≤ Σ_c w[c] = M`), so the search's score-range
/// assumptions hold unchanged. A uniform mix yields all-ones weights,
/// making the weighted scorer bit-identical to the offline one.
///
/// # Errors
///
/// Returns [`CqError::InvalidConfig`] when `counts` is empty or all zero.
pub fn mix_weights(counts: &[u64]) -> Result<Vec<f64>> {
    if counts.is_empty() {
        return Err(CqError::InvalidConfig(
            "observed mix must have at least one class".into(),
        ));
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Err(CqError::InvalidConfig(
            "observed mix must have at least one request".into(),
        ));
    }
    let m = counts.len() as f64;
    Ok(counts
        .iter()
        .map(|&c| c as f64 * m / total as f64)
        .collect())
}

/// Apportions `probe_samples` probe slots across classes proportionally
/// to the observed counts (largest-remainder method, ties broken by lower
/// class index) and returns validation-sample indices filling those
/// quotas, interleaved round-robin across classes.
///
/// The interleaving keeps any prefix of the returned order close to the
/// target mix. A class whose quota exceeds its available validation
/// samples cycles through them (repeats are deliberate: the probe subset
/// must reflect the traffic mix even from a small validation pool).
/// Everything is integer arithmetic on the counts, so the result is a
/// pure function of `(labels, counts, probe_samples)`.
///
/// # Errors
///
/// Returns [`CqError::InvalidConfig`] when `probe_samples` is zero, the
/// mix is empty/all-zero, or a class with a nonzero quota has no
/// validation samples.
pub fn mix_probe_indices(val: &Subset, counts: &[u64], probe_samples: usize) -> Result<Vec<usize>> {
    if probe_samples == 0 {
        return Err(CqError::InvalidConfig(
            "probe_samples must be positive".into(),
        ));
    }
    if counts.is_empty() {
        return Err(CqError::InvalidConfig(
            "observed mix must have at least one class".into(),
        ));
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return Err(CqError::InvalidConfig(
            "observed mix must have at least one request".into(),
        ));
    }

    // Largest-remainder apportionment in exact integer arithmetic.
    let n = probe_samples as u64;
    let mut quota: Vec<usize> = Vec::with_capacity(counts.len());
    let mut remainders: Vec<(u64, usize)> = Vec::with_capacity(counts.len());
    let mut assigned = 0u64;
    for (class, &c) in counts.iter().enumerate() {
        let exact = n * c;
        quota.push((exact / total) as usize);
        assigned += exact / total;
        remainders.push((exact % total, class));
    }
    // Largest remainder first; equal remainders go to the lower class.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = n - assigned;
    for &(rem, class) in &remainders {
        if leftover == 0 {
            break;
        }
        if rem > 0 {
            quota[class] += 1;
            leftover -= 1;
        }
    }
    // All-integral shares leave no remainders; hand the (rare) leftover
    // slots to the heaviest classes in count-then-index order.
    if leftover > 0 {
        let mut by_count: Vec<usize> = (0..counts.len()).collect();
        by_count.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
        for class in by_count.into_iter().cycle() {
            if leftover == 0 {
                break;
            }
            if counts[class] > 0 {
                quota[class] += 1;
                leftover -= 1;
            }
        }
    }

    // Per-class sample pools, in validation order.
    let mut pools: Vec<Vec<usize>> = vec![Vec::new(); counts.len()];
    for (i, &label) in val.labels().iter().enumerate() {
        if label < counts.len() {
            pools[label].push(i);
        }
    }
    for (class, q) in quota.iter().enumerate() {
        if *q > 0 && pools[class].is_empty() {
            return Err(CqError::InvalidConfig(format!(
                "class {class} needs {q} probe samples but has none in the validation split"
            )));
        }
    }

    // Round-robin interleave: pass after pass, each class that still owes
    // samples contributes its next (cycled) pool entry.
    let mut taken = vec![0usize; counts.len()];
    let mut indices = Vec::with_capacity(probe_samples);
    while indices.len() < probe_samples {
        for class in 0..counts.len() {
            if taken[class] < quota[class] {
                indices.push(pools[class][taken[class] % pools[class].len()]);
                taken[class] += 1;
            }
        }
    }
    Ok(indices)
}

/// Re-runs importance scoring and threshold search against an observed
/// class mix, producing the candidate bit arrangement for a hot
/// re-quantization.
///
/// `net` must be in its serving configuration (trained weights loaded,
/// activation quantizers installed and calibrated as deployed); the
/// search leaves the winning arrangement installed on it, exactly like
/// the offline [`search_with`]. `observed_mix[c]` is the number of
/// requests predicted as class `c` over the drifted window(s);
/// `search.probe_samples` sets the size of the mix-apportioned probe
/// subset drawn from `val`.
///
/// # Errors
///
/// Propagates scoring, search and dataset errors, plus
/// [`CqError::InvalidConfig`] for a degenerate mix.
pub fn requant_for_mix(
    net: &mut Sequential,
    val: &Subset,
    observed_mix: &[u64],
    score: &ScoreConfig,
    search: &SearchConfig,
    tel: &Telemetry,
    par: Parallelism,
) -> Result<MixRequant> {
    let span = tel.span_with(
        "requant",
        &[("classes", observed_mix.len().into())],
    );
    let weights = mix_weights(observed_mix)?;
    let scores = score_network_mix(net, val, observed_mix.len(), score, &weights, tel, par)?;
    let indices = mix_probe_indices(val, observed_mix, search.probe_samples)?;
    let probe = val.select(&indices)?;
    let mut cfg = search.clone();
    cfg.probe_samples = probe.len();
    let outcome = search_with(net, &scores, &probe, &cfg, tel, par)?;
    span.end();
    Ok(MixRequant {
        weights,
        scores,
        search: outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::{SyntheticImages, SyntheticSpec};
    use cbq_nn::{models, Trainer, TrainerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_are_mean_one_ratios() {
        let w = mix_weights(&[30, 10]).unwrap();
        assert_eq!(w, vec![1.5, 0.5]);
        let uniform = mix_weights(&[7, 7, 7]).unwrap();
        assert_eq!(uniform, vec![1.0, 1.0, 1.0]);
        assert!(mix_weights(&[]).is_err());
        assert!(mix_weights(&[0, 0]).is_err());
    }

    fn labeled_subset(labels: &[usize]) -> Subset {
        let data: Vec<f32> = (0..labels.len() * 2).map(|v| v as f32).collect();
        Subset::new(
            cbq_tensor::Tensor::from_vec(data, &[labels.len(), 2]).unwrap(),
            labels.to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn apportionment_matches_mix_and_interleaves() {
        let val = labeled_subset(&[0, 1, 0, 1, 0, 1]);
        // 3:1 mix over 8 slots → quotas 6 and 2.
        let idx = mix_probe_indices(&val, &[75, 25], 8).unwrap();
        assert_eq!(idx.len(), 8);
        let labels: Vec<usize> = idx.iter().map(|&i| val.labels()[i]).collect();
        assert_eq!(labels.iter().filter(|&&l| l == 0).count(), 6);
        assert_eq!(labels.iter().filter(|&&l| l == 1).count(), 2);
        // Round-robin: the first two slots cover both classes.
        assert_ne!(labels[0], labels[1]);
        // Class 0 has 3 pool entries but owes 6 → cycles deterministically.
        let class0: Vec<usize> = idx
            .iter()
            .copied()
            .filter(|&i| val.labels()[i] == 0)
            .collect();
        assert_eq!(class0, vec![0, 2, 4, 0, 2, 4]);
    }

    #[test]
    fn zero_count_classes_get_no_probe_slots() {
        let val = labeled_subset(&[0, 1, 2, 0, 1, 2]);
        let idx = mix_probe_indices(&val, &[10, 0, 10], 6).unwrap();
        assert!(idx.iter().all(|&i| val.labels()[i] != 1));
    }

    #[test]
    fn missing_validation_class_is_rejected() {
        let val = labeled_subset(&[0, 0, 0]);
        assert!(mix_probe_indices(&val, &[1, 1], 4).is_err());
    }

    #[test]
    fn requant_on_shifted_mix_produces_valid_arrangement() {
        let mut rng = StdRng::seed_from_u64(17);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let f = data.feature_len();
        let flat = |s: &Subset| {
            Subset::new(
                s.images().reshape(&[s.len(), f]).unwrap(),
                s.labels().to_vec(),
            )
            .unwrap()
        };
        let train = flat(data.train());
        let val = flat(data.val());
        let mut net = models::mlp(&[f, 16, 8, 3], &mut rng).unwrap();
        Trainer::new(TrainerConfig {
            batch_size: 16,
            ..TrainerConfig::quick(8, 0.05)
        })
        .fit(&mut net, &train, &mut rng)
        .unwrap();

        let score = ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        };
        let mut search = SearchConfig::new(2.0);
        search.probe_samples = 24;
        let tel = Telemetry::disabled();
        let out = requant_for_mix(
            &mut net,
            &val,
            &[80, 10, 10],
            &score,
            &search,
            &tel,
            Parallelism::serial(),
        )
        .unwrap();
        assert_eq!(out.weights.len(), 3);
        assert!(out.search.final_avg_bits <= 2.0 + 1e-4);
        assert!(out.search.arrangement.total_weights() > 0);

        // Deterministic: same inputs, same arrangement.
        let mut net2 = models::mlp(&[f, 16, 8, 3], &mut rng).unwrap();
        cbq_nn::load_state_dict(&mut net2, &cbq_nn::state_dict(&mut net)).unwrap();
        let out2 = requant_for_mix(
            &mut net2,
            &val,
            &[80, 10, 10],
            &score,
            &search,
            &tel,
            Parallelism::serial(),
        )
        .unwrap();
        assert_eq!(out.search.arrangement, out2.search.arrangement);
    }
}
