//! The end-to-end class-based quantization pipeline: pre-train (optional)
//! → score → calibrate activations → search → refine → evaluate.
//!
//! With [`CqPipeline::with_checkpoint_dir`] every phase persists a
//! checksummed checkpoint after completing (atomic write-temp → fsync →
//! rename); [`CqPipeline::with_resume`] picks a run back up from the last
//! valid checkpoint, recomputing any phase whose file is missing,
//! truncated or corrupted.

use crate::checkpoint::{
    CalibrateCkpt, PretrainCkpt, RefineCkpt, ScoresCkpt, SearchCkpt, CHECKPOINT_SCHEMA,
    PHASE_CALIBRATE, PHASE_PRETRAIN, PHASE_REFINE, PHASE_SCORES, PHASE_SEARCH,
};
use crate::{
    refine_resumable, score_network_with, search_with, teacher_probs, CqError, ImportanceScores,
    Parallelism, RefineConfig, RefineResume, Result, ScoreConfig, SearchConfig, SearchOutcome,
};
use cbq_data::SyntheticImages;
use cbq_nn::{
    evaluate, load_state_dict, state_dict, EpochStats, Layer, Phase, Sequential, Trainer,
    TrainerConfig,
};
use cbq_quant::{
    act_clip_bounds, install_act_quant, install_arrangement, model_size_bits,
    restore_act_clip_bounds, set_act_bits, set_act_calibration, BitWidth, SizeReport,
};
use cbq_resilience::{CheckpointStore, FaultPlan, LoadOutcome, RunMeta};
use cbq_telemetry::{Level, Telemetry};
use cbq_tensor::{dispatch, NumericsMode};
use rand::Rng;
use std::path::PathBuf;
use std::sync::Arc;

/// Configuration of a full CQ run.
///
/// `weight_bits` is the target *average* weight bit-width `B`; `act_bits`
/// is the (integer) activation width, "directly set to the desired
/// bit-widths" per §IV. The paper's `2.0/2.0`-style settings map to
/// `CqConfig::new(2.0, 2.0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CqConfig {
    /// Target average weight bit-width `B`.
    pub weight_bits: f32,
    /// Activation bit-width (0 disables activation quantization).
    pub act_bits: u8,
    /// Importance-scoring settings (Eqs. 5–8).
    pub score: ScoreConfig,
    /// Threshold-search settings (§III-C); its `target_avg_bits` is
    /// overwritten with `weight_bits` at run time.
    pub search: SearchConfig,
    /// Optional pre-training recipe; `None` assumes the model is already
    /// trained.
    pub pretrain: Option<TrainerConfig>,
    /// Refining recipe (§III-D).
    pub refine: RefineConfig,
    /// Batch size for test-set evaluations.
    pub eval_batch: usize,
    /// Samples used to calibrate activation clip bounds.
    pub calibration_samples: usize,
    /// Worker-thread budget for the scoring and search phases. Every
    /// phase is bit-exact at any setting — [`Parallelism::serial`] and
    /// [`Parallelism::auto`] produce byte-identical reports and
    /// checkpoints; only wall-clock differs.
    pub parallelism: Parallelism,
    /// Floating-point numerics contract for the dispatched SIMD kernels.
    /// [`NumericsMode::BitExact`] (the default) requires every ISA arm to
    /// reproduce scalar bytes; [`NumericsMode::Fast`] permits FMA and
    /// reassociation and is intended for benchmarking only. Installed
    /// process-wide at the start of [`CqPipeline::run`]. Defaults to the
    /// process mode, so `CBQ_NUMERICS=fast` in the environment is honored
    /// unless a config overrides it explicitly.
    pub numerics: NumericsMode,
}

impl CqConfig {
    /// Creates a config for a `weight/activation` bit setting with
    /// CPU-scale defaults for every phase.
    ///
    /// An `act_bits` that rounds outside `0..=8` is stored as an invalid
    /// sentinel and surfaces as [`CqError::InvalidConfig`] from
    /// [`CqConfig::validate`] (which [`CqPipeline::run`] calls first) —
    /// construction itself never panics.
    pub fn new(weight_bits: f32, act_bits: f32) -> Self {
        let act = act_bits.round();
        let act = if (0.0..=8.0).contains(&act) {
            act as u8
        } else {
            u8::MAX
        };
        CqConfig {
            weight_bits,
            act_bits: act,
            score: ScoreConfig::new(),
            search: SearchConfig::new(weight_bits),
            pretrain: Some(TrainerConfig::quick(15, 0.05)),
            refine: RefineConfig::quick(10, 0.01),
            eval_batch: 200,
            calibration_samples: 200,
            parallelism: Parallelism::auto(),
            numerics: dispatch::numerics_mode(),
        }
    }

    /// Checks every field that [`CqPipeline::run`] depends on.
    ///
    /// # Errors
    ///
    /// Returns [`CqError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.act_bits > 8 {
            return Err(CqError::InvalidConfig("act_bits must be <= 8".into()));
        }
        if self.eval_batch == 0 || self.calibration_samples == 0 {
            return Err(CqError::InvalidConfig(
                "eval_batch and calibration_samples must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Everything a CQ run produced.
#[derive(Debug, Clone)]
pub struct CqReport {
    /// Test accuracy of the full-precision model.
    pub fp_accuracy: f32,
    /// Test accuracy right after the search, before refining.
    pub pre_refine_accuracy: f32,
    /// Test accuracy after KD refining — the headline number.
    pub final_accuracy: f32,
    /// The importance scores (Figures 2 and 6 read these).
    pub scores: ImportanceScores,
    /// The search outcome: thresholds, arrangement, trace (Figure 3).
    pub search: SearchOutcome,
    /// Refining statistics per epoch.
    pub refine_stats: Vec<EpochStats>,
    /// Storage accounting for the final arrangement.
    pub size: SizeReport,
    /// Final per-class test accuracy — a class-based method should not
    /// sacrifice individual classes to the bit budget.
    pub per_class_accuracy: Vec<f32>,
}

impl CqReport {
    /// Accuracy recovered by refining, in accuracy points.
    pub fn refine_gain(&self) -> f32 {
        self.final_accuracy - self.pre_refine_accuracy
    }

    /// Accuracy gap to the full-precision model (positive = CQ worse).
    pub fn fp_gap(&self) -> f32 {
        self.fp_accuracy - self.final_accuracy
    }
}

impl std::fmt::Display for CqReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "CQ report:")?;
        writeln!(f, "  full precision : {:6.2}%", 100.0 * self.fp_accuracy)?;
        writeln!(
            f,
            "  after search   : {:6.2}%",
            100.0 * self.pre_refine_accuracy
        )?;
        writeln!(f, "  after refining : {:6.2}%", 100.0 * self.final_accuracy)?;
        writeln!(f, "  average bits   : {:.3}", self.search.final_avg_bits)?;
        writeln!(f, "  thresholds     : {:?}", self.search.thresholds)?;
        write!(
            f,
            "  compression    : {:.2}x vs fp32",
            self.size.compression_ratio()
        )
    }
}

/// The end-to-end class-based quantization pipeline (paper §III).
#[derive(Debug, Clone)]
pub struct CqPipeline {
    config: CqConfig,
    telemetry: Telemetry,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    fault: Arc<FaultPlan>,
}

impl CqPipeline {
    /// Creates a pipeline.
    pub fn new(config: CqConfig) -> Self {
        CqPipeline {
            config,
            telemetry: Telemetry::disabled(),
            checkpoint_dir: None,
            resume: false,
            fault: Arc::new(FaultPlan::none()),
        }
    }

    /// Attaches a telemetry handle: every phase of [`CqPipeline::run`]
    /// then emits spans (`pipeline`, `pretrain`, `train`, `score`,
    /// `calibrate`, `search`, `refine`, `eval.*`), counters and gauges to
    /// its sinks.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Persists a checkpoint into `dir` after every completed phase
    /// (`pretrain.ckpt`, `scores.ckpt`, `calibrate.ckpt`, `search.ckpt`,
    /// and a per-epoch `refine.ckpt`). Writes are atomic: temp file →
    /// fsync → rename, so a crash never leaves a half-written checkpoint
    /// under the final name.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// When set (and a checkpoint directory is attached), each phase first
    /// tries to load its checkpoint — verifying length, CRC-64 checksum
    /// and schema version — and recomputes from scratch on any mismatch,
    /// emitting a `checkpoint.invalid` warning instead of failing.
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Attaches a deterministic fault-injection plan (chaos testing):
    /// `fail-at:<phase>` aborts right after that phase's checkpoint is
    /// written, `truncate:<phase>` corrupts the freshly written file, and
    /// `poison-grad:<step>` flips a training gradient to NaN.
    #[must_use]
    pub fn with_fault_plan(mut self, fault: Arc<FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`CqPipeline::with_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &CqConfig {
        &self.config
    }

    /// Runs the full pipeline on `model` over `data`:
    ///
    /// 1. optional pre-training (cross-entropy),
    /// 2. full-precision evaluation + teacher soft-target caching,
    /// 3. importance scoring on the validation split (Eqs. 5–8),
    /// 4. activation-quantizer installation + calibration,
    /// 5. threshold search to the target average bit-width (§III-C),
    /// 6. KD + STE refining (§III-D),
    /// 7. final evaluation and size accounting.
    ///
    /// # Errors
    ///
    /// Propagates configuration, dataset, network, search and checkpoint
    /// I/O errors, plus [`CqError::Resilience`] for injected faults.
    pub fn run(
        &self,
        mut model: Sequential,
        data: &SyntheticImages,
        rng: &mut impl Rng,
    ) -> Result<CqReport> {
        self.config.validate()?;
        let tel = &self.telemetry;
        let store = match &self.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::open(dir, CHECKPOINT_SCHEMA)?),
            None => None,
        };
        let fault = &self.fault;
        let par = self.config.parallelism;
        tel.gauge("parallelism.workers", par.threads() as f64);
        dispatch::set_numerics_mode(self.config.numerics);
        tel.gauge("kernels.isa", dispatch::active_isa().gauge_value());
        tel.gauge("kernels.numerics", self.config.numerics.gauge_value());
        if let Some(store) = store.as_ref() {
            if self.resume {
                if let Some(meta) = store.load_meta() {
                    tel.event(
                        Level::Info,
                        "checkpoint.meta",
                        &[
                            ("recorded_threads", (meta.threads as i64).into()),
                            ("current_threads", (par.threads() as i64).into()),
                        ],
                    );
                }
            }
            store.save_meta(&RunMeta {
                threads: par.threads() as u32,
            })?;
        }
        // Runs after each phase completes: persist the checkpoint, then
        // fire any armed fault for the phase (truncation corrupts the file
        // just written; fail-at simulates a crash *after* the write, which
        // is exactly what resume must recover from).
        let after_phase = |phase: &str, payload: Vec<u8>| -> Result<()> {
            if let Some(store) = store.as_ref() {
                store.save(phase, payload)?;
                tel.event(Level::Debug, "checkpoint.saved", &[("phase", phase.into())]);
                if fault.should_truncate(phase) {
                    FaultPlan::truncate_file(&store.path_for(phase))?;
                }
            }
            fault.check_phase(phase)?;
            Ok(())
        };
        let pipeline_span = tel.span("pipeline");

        // 1. Pre-train if requested.
        if let Some(tc) = &self.config.pretrain {
            let resumed = load_phase(store.as_ref(), self.resume, tel, PHASE_PRETRAIN, |b| {
                PretrainCkpt::decode(b)
            });
            match resumed {
                Some(ckpt) => load_state_dict(&mut model, &ckpt.state)?,
                None => {
                    let span = tel.span_with("pretrain", &[("epochs", tc.epochs.into())]);
                    Trainer::new(tc.clone())
                        .with_telemetry(tel.clone())
                        .with_fault_plan(self.fault.clone())
                        .with_parallelism(par)
                        .fit(&mut model, data.train(), rng)?;
                    span.end();
                    let ckpt = PretrainCkpt {
                        state: state_dict(&mut model),
                    };
                    after_phase(PHASE_PRETRAIN, ckpt.encode())?;
                }
            }
        }

        // 2+3. Full-precision reference, frozen teacher and class-based
        //      importance scores (one checkpoint: all are pure functions
        //      of the pretrained weights).
        let resumed = load_phase(store.as_ref(), self.resume, tel, PHASE_SCORES, |b| {
            ScoresCkpt::decode(b)
        });
        let (fp_accuracy, teacher, scores) = match resumed {
            Some(ckpt) => (ckpt.fp_accuracy, ckpt.teacher, ckpt.scores),
            None => {
                let span = tel.span("eval.fp");
                let fp_accuracy = evaluate(&mut model, data.test(), self.config.eval_batch)?;
                let teacher = teacher_probs(&mut model, data.train(), self.config.eval_batch)?;
                span.end();
                let scores = score_network_with(
                    &mut model,
                    data.val(),
                    data.num_classes(),
                    &self.config.score,
                    tel,
                    par,
                )?;
                let ckpt = ScoresCkpt {
                    fp_accuracy,
                    teacher,
                    scores,
                };
                after_phase(PHASE_SCORES, ckpt.encode())?;
                (ckpt.fp_accuracy, ckpt.teacher, ckpt.scores)
            }
        };
        tel.gauge("pipeline.fp_accuracy", fp_accuracy as f64);

        // 4. Activation quantization: install, calibrate on validation
        //    samples (or restore checkpointed clip bounds), then freeze at
        //    the configured width.
        let span = tel.span_with("calibrate", &[("act_bits", self.config.act_bits.into())]);
        install_act_quant(&mut model);
        let resumed = load_phase(store.as_ref(), self.resume, tel, PHASE_CALIBRATE, |b| {
            CalibrateCkpt::decode(b)
        });
        match resumed {
            Some(ckpt) => {
                restore_act_clip_bounds(&mut model, &ckpt.clips);
            }
            None => {
                set_act_calibration(&mut model, true);
                let calib = data.val().head(self.config.calibration_samples)?;
                for batch in calib.batches(self.config.eval_batch) {
                    model.forward(&batch.images, Phase::Eval)?;
                    tel.counter_add("calibrate.forward_passes", 1);
                }
                set_act_calibration(&mut model, false);
                let ckpt = CalibrateCkpt {
                    clips: act_clip_bounds(&mut model),
                };
                after_phase(PHASE_CALIBRATE, ckpt.encode())?;
            }
        }
        if self.config.act_bits > 0 {
            let bits = BitWidth::new(self.config.act_bits).map_err(CqError::Quant)?;
            set_act_bits(&mut model, Some(bits));
        }
        span.end();

        // 5. Threshold search to the target average bit-width. A resumed
        //    outcome reinstalls its arrangement so the fake-quantized
        //    model matches the post-search state exactly.
        let resumed = load_phase(store.as_ref(), self.resume, tel, PHASE_SEARCH, |b| {
            SearchCkpt::decode(b)
        });
        let (outcome, pre_refine_accuracy) = match resumed {
            Some(ckpt) => {
                install_arrangement(&mut model, &ckpt.outcome.arrangement)?;
                (ckpt.outcome, ckpt.pre_refine_accuracy)
            }
            None => {
                let mut search_cfg = self.config.search.clone();
                search_cfg.target_avg_bits = self.config.weight_bits;
                let outcome = search_with(&mut model, &scores, data.val(), &search_cfg, tel, par)?;
                let pre_refine_accuracy =
                    evaluate(&mut model, data.test(), self.config.eval_batch)?;
                let ckpt = SearchCkpt {
                    outcome,
                    pre_refine_accuracy,
                };
                after_phase(PHASE_SEARCH, ckpt.encode())?;
                (ckpt.outcome, ckpt.pre_refine_accuracy)
            }
        };
        tel.gauge("pipeline.pre_refine_accuracy", pre_refine_accuracy as f64);

        // 6. KD refining through the installed transforms (STE), with a
        //    per-epoch checkpoint so a crash costs at most one epoch.
        let refine_resume = load_phase(store.as_ref(), self.resume, tel, PHASE_REFINE, |b| {
            RefineCkpt::decode(b)
        })
        .map(RefineCkpt::into_resume);
        let store_ref = store.as_ref();
        let mut on_epoch = |snapshot: &RefineResume| -> Result<()> {
            if let Some(store) = store_ref {
                store.save(PHASE_REFINE, RefineCkpt::from_resume(snapshot).encode())?;
                if fault.should_truncate(PHASE_REFINE) {
                    FaultPlan::truncate_file(&store.path_for(PHASE_REFINE))?;
                }
            }
            // `fail-at:refine-epoch-<k>` simulates a crash right after
            // epoch k's checkpoint lands.
            fault.check_phase(&format!("refine-epoch-{}", snapshot.next_epoch - 1))?;
            Ok(())
        };
        let refine_stats = refine_resumable(
            &mut model,
            data.train(),
            &teacher,
            &self.config.refine,
            rng,
            tel,
            fault,
            refine_resume,
            Some(&mut on_epoch),
        )?;
        fault.check_phase(PHASE_REFINE)?;

        // 7. Final evaluation + accounting.
        let span = tel.span("eval.final");
        let final_accuracy = evaluate(&mut model, data.test(), self.config.eval_batch)?;
        let per_class = cbq_nn::evaluate_per_class(
            &mut model,
            data.test(),
            data.num_classes(),
            self.config.eval_batch,
        )?;
        span.end();
        let per_class_accuracy = (0..data.num_classes())
            .map(|c| per_class.class_accuracy(c))
            .collect();
        let quantized = outcome.arrangement.total_weights();
        let total_params = model.param_count();
        let size = model_size_bits(&outcome.arrangement, total_params.saturating_sub(quantized));

        tel.gauge("pipeline.final_accuracy", final_accuracy as f64);
        tel.gauge("pipeline.avg_bits", outcome.final_avg_bits as f64);
        tel.info(
            "pipeline.done",
            &[
                ("fp_accuracy", fp_accuracy.into()),
                ("final_accuracy", final_accuracy.into()),
                ("avg_bits", outcome.final_avg_bits.into()),
                ("probe_count", outcome.probe_count.into()),
            ],
        );
        pipeline_span.end();
        tel.flush();

        Ok(CqReport {
            fp_accuracy,
            pre_refine_accuracy,
            final_accuracy,
            scores,
            search: outcome,
            refine_stats,
            size,
            per_class_accuracy,
        })
    }
}

/// Loads and decodes one phase's checkpoint when resuming. Any failure —
/// missing file, bad length, checksum or schema mismatch, or a payload
/// that no longer decodes — yields `None` so the pipeline recomputes the
/// phase; corruption is reported as a `checkpoint.invalid` warning and
/// the stale file is removed.
fn load_phase<T>(
    store: Option<&CheckpointStore>,
    resume: bool,
    tel: &Telemetry,
    phase: &str,
    decode: impl FnOnce(&[u8]) -> Result<T>,
) -> Option<T> {
    if !resume {
        return None;
    }
    let store = store?;
    let invalid = |detail: String| {
        tel.event(
            Level::Warn,
            "checkpoint.invalid",
            &[("phase", phase.into()), ("error", detail.into())],
        );
        store.invalidate(phase);
    };
    match store.load(phase) {
        LoadOutcome::Loaded(payload) => match decode(&payload) {
            Ok(value) => {
                tel.event(Level::Info, "checkpoint.loaded", &[("phase", phase.into())]);
                Some(value)
            }
            Err(e) => {
                invalid(e.to_string());
                None
            }
        },
        LoadOutcome::Absent => None,
        LoadOutcome::Invalid(e) => {
            invalid(e.to_string());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::SyntheticSpec;
    use cbq_nn::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_end_to_end_on_tiny_mlp() {
        let mut rng = StdRng::seed_from_u64(21);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
        let mut config = CqConfig::new(2.0, 4.0);
        config.pretrain = Some(cbq_nn::TrainerConfig {
            batch_size: 16,
            ..cbq_nn::TrainerConfig::quick(12, 0.05)
        });
        config.refine = RefineConfig {
            batch_size: 16,
            ..RefineConfig::quick(8, 0.02)
        };
        config.score.samples_per_class = 8;
        config.search.probe_samples = 24;
        let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();
        assert!(report.fp_accuracy > 0.8, "fp acc {}", report.fp_accuracy);
        assert!(
            report.search.final_avg_bits <= 2.0 + 1e-4,
            "avg bits {} above target",
            report.search.final_avg_bits
        );
        assert!(
            report.final_accuracy > 0.5,
            "final acc {} too low",
            report.final_accuracy
        );
        assert!(report.size.compression_ratio() > 1.0);
        assert_eq!(report.scores.num_classes, 3);
        assert_eq!(report.per_class_accuracy.len(), 3);
        let mean_pc: f32 =
            report.per_class_accuracy.iter().sum::<f32>() / report.per_class_accuracy.len() as f32;
        assert!(
            (mean_pc - report.final_accuracy).abs() < 0.05,
            "per-class mean vs overall"
        );
        assert!(report.to_string().contains("after refining"));
    }

    #[test]
    fn config_validation() {
        let mut c = CqConfig::new(2.0, 2.0);
        c.act_bits = 9;
        assert!(c.validate().is_err());
        let mut c = CqConfig::new(2.0, 2.0);
        c.eval_batch = 0;
        assert!(c.validate().is_err());
        assert!(CqConfig::new(3.0, 3.0).validate().is_ok());
    }

    #[test]
    fn out_of_range_act_bits_error_instead_of_panic() {
        // Construction must not panic; validation reports the error.
        let c = CqConfig::new(2.0, 9.0);
        assert!(matches!(c.validate(), Err(CqError::InvalidConfig(_))));
        let c = CqConfig::new(2.0, -1.0);
        assert!(c.validate().is_err());
        assert!(CqConfig::new(2.0, 8.0).validate().is_ok());

        // The pipeline surfaces it as an error before doing any work.
        let mut rng = StdRng::seed_from_u64(1);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 4, 2], &mut rng).unwrap();
        let err = CqPipeline::new(CqConfig::new(2.0, 9.0))
            .run(model, &data, &mut rng)
            .unwrap_err();
        assert!(matches!(err, CqError::InvalidConfig(_)), "got {err}");
    }

    #[test]
    fn report_helpers() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 12, 6, 2], &mut rng).unwrap();
        let mut config = CqConfig::new(3.0, 0.0); // no act quant
        config.pretrain = Some(cbq_nn::TrainerConfig {
            batch_size: 16,
            ..cbq_nn::TrainerConfig::quick(8, 0.05)
        });
        config.refine = RefineConfig {
            batch_size: 16,
            ..RefineConfig::quick(4, 0.02)
        };
        config.score.samples_per_class = 6;
        config.search.probe_samples = 16;
        let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();
        assert!(
            (report.refine_gain() - (report.final_accuracy - report.pre_refine_accuracy)).abs()
                < 1e-6
        );
        assert!((report.fp_gap() - (report.fp_accuracy - report.final_accuracy)).abs() < 1e-6);
    }
}
