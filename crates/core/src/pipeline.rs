//! The end-to-end class-based quantization pipeline: pre-train (optional)
//! → score → calibrate activations → search → refine → evaluate.

use crate::{
    refine_traced, score_network_traced, search_traced, teacher_probs, CqError, ImportanceScores,
    RefineConfig, Result, ScoreConfig, SearchConfig, SearchOutcome,
};
use cbq_data::SyntheticImages;
use cbq_nn::{evaluate, EpochStats, Layer, Phase, Sequential, Trainer, TrainerConfig};
use cbq_quant::{
    install_act_quant, model_size_bits, set_act_bits, set_act_calibration, BitWidth, SizeReport,
};
use cbq_telemetry::Telemetry;
use rand::Rng;

/// Configuration of a full CQ run.
///
/// `weight_bits` is the target *average* weight bit-width `B`; `act_bits`
/// is the (integer) activation width, "directly set to the desired
/// bit-widths" per §IV. The paper's `2.0/2.0`-style settings map to
/// `CqConfig::new(2.0, 2.0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CqConfig {
    /// Target average weight bit-width `B`.
    pub weight_bits: f32,
    /// Activation bit-width (0 disables activation quantization).
    pub act_bits: u8,
    /// Importance-scoring settings (Eqs. 5–8).
    pub score: ScoreConfig,
    /// Threshold-search settings (§III-C); its `target_avg_bits` is
    /// overwritten with `weight_bits` at run time.
    pub search: SearchConfig,
    /// Optional pre-training recipe; `None` assumes the model is already
    /// trained.
    pub pretrain: Option<TrainerConfig>,
    /// Refining recipe (§III-D).
    pub refine: RefineConfig,
    /// Batch size for test-set evaluations.
    pub eval_batch: usize,
    /// Samples used to calibrate activation clip bounds.
    pub calibration_samples: usize,
}

impl CqConfig {
    /// Creates a config for a `weight/activation` bit setting with
    /// CPU-scale defaults for every phase.
    ///
    /// # Panics
    ///
    /// Panics if `act_bits` rounds outside `0..=8`; use the struct fields
    /// directly for exotic settings.
    pub fn new(weight_bits: f32, act_bits: f32) -> Self {
        let act = act_bits.round();
        assert!(
            (0.0..=8.0).contains(&act),
            "activation bits must round into 0..=8"
        );
        CqConfig {
            weight_bits,
            act_bits: act as u8,
            score: ScoreConfig::new(),
            search: SearchConfig::new(weight_bits),
            pretrain: Some(TrainerConfig::quick(15, 0.05)),
            refine: RefineConfig::quick(10, 0.01),
            eval_batch: 200,
            calibration_samples: 200,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.act_bits > 8 {
            return Err(CqError::InvalidConfig("act_bits must be <= 8".into()));
        }
        if self.eval_batch == 0 || self.calibration_samples == 0 {
            return Err(CqError::InvalidConfig(
                "eval_batch and calibration_samples must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Everything a CQ run produced.
#[derive(Debug, Clone)]
pub struct CqReport {
    /// Test accuracy of the full-precision model.
    pub fp_accuracy: f32,
    /// Test accuracy right after the search, before refining.
    pub pre_refine_accuracy: f32,
    /// Test accuracy after KD refining — the headline number.
    pub final_accuracy: f32,
    /// The importance scores (Figures 2 and 6 read these).
    pub scores: ImportanceScores,
    /// The search outcome: thresholds, arrangement, trace (Figure 3).
    pub search: SearchOutcome,
    /// Refining statistics per epoch.
    pub refine_stats: Vec<EpochStats>,
    /// Storage accounting for the final arrangement.
    pub size: SizeReport,
    /// Final per-class test accuracy — a class-based method should not
    /// sacrifice individual classes to the bit budget.
    pub per_class_accuracy: Vec<f32>,
}

impl CqReport {
    /// Accuracy recovered by refining, in accuracy points.
    pub fn refine_gain(&self) -> f32 {
        self.final_accuracy - self.pre_refine_accuracy
    }

    /// Accuracy gap to the full-precision model (positive = CQ worse).
    pub fn fp_gap(&self) -> f32 {
        self.fp_accuracy - self.final_accuracy
    }
}

impl std::fmt::Display for CqReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "CQ report:")?;
        writeln!(f, "  full precision : {:6.2}%", 100.0 * self.fp_accuracy)?;
        writeln!(
            f,
            "  after search   : {:6.2}%",
            100.0 * self.pre_refine_accuracy
        )?;
        writeln!(f, "  after refining : {:6.2}%", 100.0 * self.final_accuracy)?;
        writeln!(f, "  average bits   : {:.3}", self.search.final_avg_bits)?;
        writeln!(f, "  thresholds     : {:?}", self.search.thresholds)?;
        write!(
            f,
            "  compression    : {:.2}x vs fp32",
            self.size.compression_ratio()
        )
    }
}

/// The end-to-end class-based quantization pipeline (paper §III).
#[derive(Debug, Clone)]
pub struct CqPipeline {
    config: CqConfig,
    telemetry: Telemetry,
}

impl CqPipeline {
    /// Creates a pipeline.
    pub fn new(config: CqConfig) -> Self {
        CqPipeline {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: every phase of [`CqPipeline::run`]
    /// then emits spans (`pipeline`, `pretrain`, `train`, `score`,
    /// `calibrate`, `search`, `refine`, `eval.*`), counters and gauges to
    /// its sinks.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`CqPipeline::with_telemetry`] was called).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &CqConfig {
        &self.config
    }

    /// Runs the full pipeline on `model` over `data`:
    ///
    /// 1. optional pre-training (cross-entropy),
    /// 2. full-precision evaluation + teacher soft-target caching,
    /// 3. importance scoring on the validation split (Eqs. 5–8),
    /// 4. activation-quantizer installation + calibration,
    /// 5. threshold search to the target average bit-width (§III-C),
    /// 6. KD + STE refining (§III-D),
    /// 7. final evaluation and size accounting.
    ///
    /// # Errors
    ///
    /// Propagates configuration, dataset, network and search errors.
    pub fn run(
        &self,
        mut model: Sequential,
        data: &SyntheticImages,
        rng: &mut impl Rng,
    ) -> Result<CqReport> {
        self.config.validate()?;
        let tel = &self.telemetry;
        let pipeline_span = tel.span("pipeline");

        // 1. Pre-train if requested.
        if let Some(tc) = &self.config.pretrain {
            let span = tel.span_with("pretrain", &[("epochs", tc.epochs.into())]);
            Trainer::new(tc.clone()).with_telemetry(tel.clone()).fit(
                &mut model,
                data.train(),
                rng,
            )?;
            span.end();
        }

        // 2. Full-precision reference + frozen teacher.
        let span = tel.span("eval.fp");
        let fp_accuracy = evaluate(&mut model, data.test(), self.config.eval_batch)?;
        let teacher = teacher_probs(&mut model, data.train(), self.config.eval_batch)?;
        span.end();
        tel.gauge("pipeline.fp_accuracy", fp_accuracy as f64);

        // 3. Class-based importance scores.
        let scores = score_network_traced(
            &mut model,
            data.val(),
            data.num_classes(),
            &self.config.score,
            tel,
        )?;

        // 4. Activation quantization: install, calibrate on validation
        //    samples, then freeze at the configured width.
        let span = tel.span_with("calibrate", &[("act_bits", self.config.act_bits.into())]);
        install_act_quant(&mut model);
        set_act_calibration(&mut model, true);
        let calib = data.val().head(self.config.calibration_samples)?;
        for batch in calib.batches(self.config.eval_batch) {
            model.forward(&batch.images, Phase::Eval)?;
            tel.counter_add("calibrate.forward_passes", 1);
        }
        set_act_calibration(&mut model, false);
        if self.config.act_bits > 0 {
            let bits = BitWidth::new(self.config.act_bits).map_err(CqError::Quant)?;
            set_act_bits(&mut model, Some(bits));
        }
        span.end();

        // 5. Threshold search to the target average bit-width.
        let mut search_cfg = self.config.search.clone();
        search_cfg.target_avg_bits = self.config.weight_bits;
        let outcome = search_traced(&mut model, &scores, data.val(), &search_cfg, tel)?;
        let pre_refine_accuracy = evaluate(&mut model, data.test(), self.config.eval_batch)?;
        tel.gauge("pipeline.pre_refine_accuracy", pre_refine_accuracy as f64);

        // 6. KD refining through the installed transforms (STE).
        let refine_stats = refine_traced(
            &mut model,
            data.train(),
            &teacher,
            &self.config.refine,
            rng,
            tel,
        )?;

        // 7. Final evaluation + accounting.
        let span = tel.span("eval.final");
        let final_accuracy = evaluate(&mut model, data.test(), self.config.eval_batch)?;
        let per_class = cbq_nn::evaluate_per_class(
            &mut model,
            data.test(),
            data.num_classes(),
            self.config.eval_batch,
        )?;
        span.end();
        let per_class_accuracy = (0..data.num_classes())
            .map(|c| per_class.class_accuracy(c))
            .collect();
        let quantized = outcome.arrangement.total_weights();
        let total_params = model.param_count();
        let size = model_size_bits(&outcome.arrangement, total_params.saturating_sub(quantized));

        tel.gauge("pipeline.final_accuracy", final_accuracy as f64);
        tel.gauge("pipeline.avg_bits", outcome.final_avg_bits as f64);
        tel.info(
            "pipeline.done",
            &[
                ("fp_accuracy", fp_accuracy.into()),
                ("final_accuracy", final_accuracy.into()),
                ("avg_bits", outcome.final_avg_bits.into()),
                ("probe_count", outcome.probe_count.into()),
            ],
        );
        pipeline_span.end();
        tel.flush();

        Ok(CqReport {
            fp_accuracy,
            pre_refine_accuracy,
            final_accuracy,
            scores,
            search: outcome,
            refine_stats,
            size,
            per_class_accuracy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_data::SyntheticSpec;
    use cbq_nn::models;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_end_to_end_on_tiny_mlp() {
        let mut rng = StdRng::seed_from_u64(21);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
        let mut config = CqConfig::new(2.0, 4.0);
        config.pretrain = Some(cbq_nn::TrainerConfig {
            batch_size: 16,
            ..cbq_nn::TrainerConfig::quick(12, 0.05)
        });
        config.refine = RefineConfig {
            batch_size: 16,
            ..RefineConfig::quick(8, 0.02)
        };
        config.score.samples_per_class = 8;
        config.search.probe_samples = 24;
        let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();
        assert!(report.fp_accuracy > 0.8, "fp acc {}", report.fp_accuracy);
        assert!(
            report.search.final_avg_bits <= 2.0 + 1e-4,
            "avg bits {} above target",
            report.search.final_avg_bits
        );
        assert!(
            report.final_accuracy > 0.5,
            "final acc {} too low",
            report.final_accuracy
        );
        assert!(report.size.compression_ratio() > 1.0);
        assert_eq!(report.scores.num_classes, 3);
        assert_eq!(report.per_class_accuracy.len(), 3);
        let mean_pc: f32 =
            report.per_class_accuracy.iter().sum::<f32>() / report.per_class_accuracy.len() as f32;
        assert!(
            (mean_pc - report.final_accuracy).abs() < 0.05,
            "per-class mean vs overall"
        );
        assert!(report.to_string().contains("after refining"));
    }

    #[test]
    fn config_validation() {
        let mut c = CqConfig::new(2.0, 2.0);
        c.act_bits = 9;
        assert!(c.validate().is_err());
        let mut c = CqConfig::new(2.0, 2.0);
        c.eval_batch = 0;
        assert!(c.validate().is_err());
        assert!(CqConfig::new(3.0, 3.0).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "activation bits")]
    fn new_panics_on_out_of_range_act_bits() {
        let _ = CqConfig::new(2.0, 9.0);
    }

    #[test]
    fn report_helpers() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 12, 6, 2], &mut rng).unwrap();
        let mut config = CqConfig::new(3.0, 0.0); // no act quant
        config.pretrain = Some(cbq_nn::TrainerConfig {
            batch_size: 16,
            ..cbq_nn::TrainerConfig::quick(8, 0.05)
        });
        config.refine = RefineConfig {
            batch_size: 16,
            ..RefineConfig::quick(4, 0.02)
        };
        config.score.samples_per_class = 6;
        config.search.probe_samples = 16;
        let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();
        assert!(
            (report.refine_gain() - (report.final_accuracy - report.pre_refine_accuracy)).abs()
                < 1e-6
        );
        assert!((report.fp_gap() - (report.fp_accuracy - report.final_accuracy)).abs() < 1e-6);
    }
}
