#![warn(missing_docs)]

//! # cbq-core — Class-based Quantization (DATE 2023)
//!
//! The paper's contribution, end to end:
//!
//! 1. **Importance scoring** ([`importance`]) — one backward pass per
//!    class batch yields the Taylor criticality score
//!    `s = |a · ∂Φ/∂a|` for every neuron (Eq. 5); thresholding at `ε`
//!    gives per-class membership in the critical pathway (Eq. 6), summing
//!    over classes gives the neuron score `γ` (Eq. 7), and a filter's
//!    score `φ` is the max over its neurons (Eq. 8).
//! 2. **Bit-width search** ([`search()`]) — filters sort by score; global
//!    thresholds `p_1 … p_N` move upward in steps of `D`, each frozen when
//!    validation accuracy drops below its target `T_k = T_{k-1}·R`
//!    (§III-C), with a second squeeze phase when the average bit-width is
//!    still above the user's target `B`.
//! 3. **Refining** ([`refine()`]) — quantization-aware fine-tuning with the
//!    knowledge-distillation loss `α·L_ce + (1-α)·KL` (Eq. 10) and the
//!    straight-through estimator.
//!
//! [`CqPipeline`] chains the three phases behind one call.
//!
//! # Example
//!
//! ```no_run
//! use cbq_core::{CqConfig, CqPipeline};
//! use cbq_data::{SyntheticImages, SyntheticSpec};
//! use cbq_nn::models;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = SyntheticImages::generate(&SyntheticSpec::tiny(4), &mut rng)?;
//! let model = models::mlp(&[data.feature_len(), 32, 16, 4], &mut rng)?;
//! let report = CqPipeline::new(CqConfig::new(2.0, 2.0)).run(model, &data, &mut rng)?;
//! println!("{:.1}% at {:.2} avg bits", 100.0 * report.final_accuracy, report.search.final_avg_bits);
//! # Ok(())
//! # }
//! ```

pub mod checkpoint;
mod error;
pub mod importance;
pub mod pipeline;
pub mod refine;
pub mod requant;
pub mod search;

pub use cbq_telemetry::Telemetry;
pub use cbq_tensor::parallel::Parallelism;
pub use checkpoint::{
    CalibrateCkpt, PretrainCkpt, RefineCkpt, ScoresCkpt, SearchCkpt, CHECKPOINT_SCHEMA,
};
pub use error::CqError;
pub use importance::{
    score_network, score_network_mix, score_network_traced, score_network_with, ImportanceScores,
    ScoreConfig, UnitScores,
};
pub use pipeline::{CqConfig, CqPipeline, CqReport};
pub use refine::{
    refine, refine_resumable, refine_traced, teacher_probs, OnEpoch, RefineConfig, RefineResume,
};
pub use requant::{mix_probe_indices, mix_weights, requant_for_mix, MixRequant};
pub use search::{
    search, search_traced, search_with, Granularity, ProbeCache, ProbeKey, SearchConfig,
    SearchOutcome, SearchStep, ThresholdSummary,
};

/// Result alias for fallible CQ operations.
pub type Result<T> = std::result::Result<T, CqError>;
