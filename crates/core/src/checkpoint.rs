//! Phase-level checkpoint payloads for the CQ pipeline.
//!
//! Each pipeline phase persists exactly the state a resumed run needs to
//! continue as if it had never stopped, mapped onto the paper's phases:
//!
//! | phase       | paper  | payload                                        |
//! |-------------|--------|------------------------------------------------|
//! | `pretrain`  | §IV    | trained weights ([`PretrainCkpt`])             |
//! | `scores`    | §III-A/B | fp accuracy, teacher probs, importance scores ([`ScoresCkpt`]) |
//! | `calibrate` | §II-A  | activation clip bounds `b` ([`CalibrateCkpt`]) |
//! | `search`    | §III-C | search outcome + pre-refine accuracy ([`SearchCkpt`]) |
//! | `refine`    | §III-D | per-epoch student weights, SGD velocities, stats ([`RefineCkpt`]) |
//!
//! Payloads use the dependency-free binary codec of `cbq-resilience`
//! (floats as raw IEEE-754 bits, so round-trips are bit-exact) and travel
//! inside its checksummed [`Checkpoint`](cbq_resilience::Checkpoint)
//! container, written atomically by a
//! [`CheckpointStore`](cbq_resilience::CheckpointStore).

use crate::importance::UnitScores;
use crate::{
    CqError, ImportanceScores, RefineResume, Result, SearchOutcome, SearchStep, ThresholdSummary,
};
use cbq_nn::{EpochStats, StateDict};
use cbq_quant::{BitArrangement, BitWidth, UnitArrangement};
use cbq_resilience::{ByteReader, ByteWriter, ResilienceError};
use cbq_tensor::Tensor;

/// Schema version stamped into every pipeline checkpoint. Bump on any
/// payload layout change; the store rejects mismatched versions and the
/// pipeline recomputes the phase.
///
/// History: v1 — initial layout; v2 — `SearchOutcome.probe_cache_hits`
/// added to the search payload, run metadata (`meta.ckpt`) records the
/// worker count.
pub const CHECKPOINT_SCHEMA: u32 = 2;

/// Phase name of the pre-training checkpoint.
pub const PHASE_PRETRAIN: &str = "pretrain";
/// Phase name of the scoring checkpoint (also holds the frozen teacher).
pub const PHASE_SCORES: &str = "scores";
/// Phase name of the activation-calibration checkpoint.
pub const PHASE_CALIBRATE: &str = "calibrate";
/// Phase name of the threshold-search checkpoint.
pub const PHASE_SEARCH: &str = "search";
/// Phase name of the (per-epoch) refining checkpoint.
pub const PHASE_REFINE: &str = "refine";

fn trailing(r: &ByteReader<'_>, what: &str) -> Result<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(CqError::Resilience(ResilienceError::Corrupt(format!(
            "{what}: {} trailing bytes after payload",
            r.remaining()
        ))))
    }
}

fn put_tensor(w: &mut ByteWriter, t: &Tensor) {
    w.put_usize_slice(t.shape());
    w.put_f32_slice(t.as_slice());
}

fn get_tensor(r: &mut ByteReader<'_>) -> Result<Tensor> {
    let shape = r.get_usize_vec()?;
    let data = r.get_f32_vec()?;
    Ok(Tensor::from_vec(data, &shape)?)
}

fn put_epoch_stats(w: &mut ByteWriter, stats: &[EpochStats]) {
    w.put_usize(stats.len());
    for s in stats {
        w.put_usize(s.epoch);
        w.put_f32(s.loss);
        w.put_f32(s.train_accuracy);
    }
}

fn get_epoch_stats(r: &mut ByteReader<'_>) -> Result<Vec<EpochStats>> {
    let n = r.get_usize()?;
    let mut stats = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        stats.push(EpochStats {
            epoch: r.get_usize()?,
            loss: r.get_f32()?,
            train_accuracy: r.get_f32()?,
        });
    }
    Ok(stats)
}

fn put_scores(w: &mut ByteWriter, scores: &ImportanceScores) {
    w.put_usize(scores.num_classes);
    w.put_usize(scores.units.len());
    for u in &scores.units {
        w.put_str(&u.name);
        w.put_str(&u.tap);
        w.put_usize(u.out_channels);
        w.put_usize(u.weights_per_filter);
        w.put_usize(u.neurons_per_filter);
        w.put_f64_slice(&u.gamma);
        w.put_f64_slice(&u.phi);
        w.put_usize(u.beta_filter.len());
        for row in &u.beta_filter {
            w.put_f64_slice(row);
        }
    }
}

fn get_scores(r: &mut ByteReader<'_>) -> Result<ImportanceScores> {
    let num_classes = r.get_usize()?;
    let n = r.get_usize()?;
    let mut units = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let name = r.get_string()?;
        let tap = r.get_string()?;
        let out_channels = r.get_usize()?;
        let weights_per_filter = r.get_usize()?;
        let neurons_per_filter = r.get_usize()?;
        let gamma = r.get_f64_vec()?;
        let phi = r.get_f64_vec()?;
        let rows = r.get_usize()?;
        let mut beta_filter = Vec::with_capacity(rows.min(1 << 20));
        for _ in 0..rows {
            beta_filter.push(r.get_f64_vec()?);
        }
        units.push(UnitScores {
            name,
            tap,
            out_channels,
            weights_per_filter,
            neurons_per_filter,
            gamma,
            phi,
            beta_filter,
        });
    }
    Ok(ImportanceScores { num_classes, units })
}

fn put_arrangement(w: &mut ByteWriter, arr: &BitArrangement) {
    w.put_usize(arr.units().len());
    for u in arr.units() {
        w.put_str(&u.name);
        w.put_usize(u.weights_per_filter);
        w.put_usize(u.bits.len());
        for b in &u.bits {
            w.put_u8(b.bits());
        }
    }
}

fn get_arrangement(r: &mut ByteReader<'_>) -> Result<BitArrangement> {
    let n = r.get_usize()?;
    let mut arr = BitArrangement::new();
    for _ in 0..n {
        let name = r.get_string()?;
        let weights_per_filter = r.get_usize()?;
        let count = r.get_usize()?;
        let mut bits = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            bits.push(BitWidth::new(r.get_u8()?).map_err(CqError::Quant)?);
        }
        arr.push(UnitArrangement {
            name,
            bits,
            weights_per_filter,
        });
    }
    Ok(arr)
}

fn put_outcome(w: &mut ByteWriter, o: &SearchOutcome) {
    w.put_f64_slice(&o.thresholds);
    put_arrangement(w, &o.arrangement);
    w.put_usize(o.trace.len());
    for s in &o.trace {
        w.put_usize(s.threshold_index);
        w.put_f64(s.threshold);
        w.put_f32(s.accuracy);
        w.put_f32(s.avg_bits);
        w.put_bool(s.squeeze);
    }
    w.put_f32(o.final_avg_bits);
    w.put_f32(o.final_probe_accuracy);
    w.put_usize(o.probe_count);
    w.put_usize(o.probe_cache_hits);
    w.put_usize(o.threshold_summaries.len());
    for s in &o.threshold_summaries {
        w.put_usize(s.threshold_index);
        w.put_usize(s.probes);
        w.put_usize(s.squeeze_moves);
        w.put_f64(s.final_position);
        w.put_f32(s.last_probe_accuracy);
    }
    match &o.budget_exhausted {
        Some(reason) => {
            w.put_bool(true);
            w.put_str(reason);
        }
        None => w.put_bool(false),
    }
}

fn get_outcome(r: &mut ByteReader<'_>) -> Result<SearchOutcome> {
    let thresholds = r.get_f64_vec()?;
    let arrangement = get_arrangement(r)?;
    let n = r.get_usize()?;
    let mut trace = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        trace.push(SearchStep {
            threshold_index: r.get_usize()?,
            threshold: r.get_f64()?,
            accuracy: r.get_f32()?,
            avg_bits: r.get_f32()?,
            squeeze: r.get_bool()?,
        });
    }
    let final_avg_bits = r.get_f32()?;
    let final_probe_accuracy = r.get_f32()?;
    let probe_count = r.get_usize()?;
    let probe_cache_hits = r.get_usize()?;
    let n = r.get_usize()?;
    let mut threshold_summaries = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        threshold_summaries.push(ThresholdSummary {
            threshold_index: r.get_usize()?,
            probes: r.get_usize()?,
            squeeze_moves: r.get_usize()?,
            final_position: r.get_f64()?,
            last_probe_accuracy: r.get_f32()?,
        });
    }
    let budget_exhausted = if r.get_bool()? {
        Some(r.get_string()?)
    } else {
        None
    };
    Ok(SearchOutcome {
        thresholds,
        arrangement,
        trace,
        final_avg_bits,
        final_probe_accuracy,
        probe_count,
        probe_cache_hits,
        threshold_summaries,
        budget_exhausted,
    })
}

fn put_state(w: &mut ByteWriter, state: &StateDict) {
    w.put_bytes(&state.to_bytes());
}

fn get_state(r: &mut ByteReader<'_>) -> Result<StateDict> {
    let bytes = r.get_bytes()?;
    Ok(StateDict::from_bytes(&bytes)?)
}

/// Payload of the `pretrain` checkpoint: the trained weights.
#[derive(Debug, Clone, PartialEq)]
pub struct PretrainCkpt {
    /// Full-precision weights after pre-training.
    pub state: StateDict,
}

impl PretrainCkpt {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_state(&mut w, &self.state);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`PretrainCkpt::encode`].
    ///
    /// # Errors
    ///
    /// Returns a decode error for truncated or malformed bytes; never
    /// panics or returns partial state.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let state = get_state(&mut r)?;
        trailing(&r, "pretrain checkpoint")?;
        Ok(PretrainCkpt { state })
    }
}

/// Payload of the `scores` checkpoint: everything the scoring phase and
/// the full-precision reference evaluation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoresCkpt {
    /// Test accuracy of the full-precision model.
    pub fp_accuracy: f32,
    /// Frozen teacher soft targets over the training split.
    pub teacher: Tensor,
    /// Class-based importance scores (Eqs. 5–8).
    pub scores: ImportanceScores,
}

impl ScoresCkpt {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_f32(self.fp_accuracy);
        put_tensor(&mut w, &self.teacher);
        put_scores(&mut w, &self.scores);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`ScoresCkpt::encode`].
    ///
    /// # Errors
    ///
    /// Returns a decode error for truncated or malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let fp_accuracy = r.get_f32()?;
        let teacher = get_tensor(&mut r)?;
        let scores = get_scores(&mut r)?;
        trailing(&r, "scores checkpoint")?;
        Ok(ScoresCkpt {
            fp_accuracy,
            teacher,
            scores,
        })
    }
}

/// Payload of the `calibrate` checkpoint: per-layer activation clip
/// bounds `b` (§II-A), keyed by layer name.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrateCkpt {
    /// `(layer name, clip bound)` pairs from `act_clip_bounds`.
    pub clips: Vec<(String, f32)>,
}

impl CalibrateCkpt {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.clips.len());
        for (name, clip) in &self.clips {
            w.put_str(name);
            w.put_f32(*clip);
        }
        w.into_bytes()
    }

    /// Decodes a payload produced by [`CalibrateCkpt::encode`].
    ///
    /// # Errors
    ///
    /// Returns a decode error for truncated or malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let n = r.get_usize()?;
        let mut clips = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let name = r.get_string()?;
            let clip = r.get_f32()?;
            clips.push((name, clip));
        }
        trailing(&r, "calibrate checkpoint")?;
        Ok(CalibrateCkpt { clips })
    }
}

/// Payload of the `search` checkpoint: the §III-C outcome plus the
/// pre-refine test accuracy measured on the installed arrangement.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCkpt {
    /// Threshold-search outcome (arrangement, trace, thresholds).
    pub outcome: SearchOutcome,
    /// Test accuracy right after the search, before refining.
    pub pre_refine_accuracy: f32,
}

impl SearchCkpt {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_outcome(&mut w, &self.outcome);
        w.put_f32(self.pre_refine_accuracy);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`SearchCkpt::encode`].
    ///
    /// # Errors
    ///
    /// Returns a decode error for truncated or malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let outcome = get_outcome(&mut r)?;
        let pre_refine_accuracy = r.get_f32()?;
        trailing(&r, "search checkpoint")?;
        Ok(SearchCkpt {
            outcome,
            pre_refine_accuracy,
        })
    }
}

/// Payload of the `refine` checkpoint, rewritten after every completed
/// epoch: a serialized [`RefineResume`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineCkpt {
    /// First epoch still to run.
    pub next_epoch: usize,
    /// Student weights at the snapshot.
    pub state: StateDict,
    /// SGD velocity buffers, in `visit_params` order.
    pub velocities: Vec<Tensor>,
    /// Stats for the completed epochs.
    pub stats: Vec<EpochStats>,
}

impl RefineCkpt {
    /// Builds the payload from a mid-refine snapshot.
    pub fn from_resume(resume: &RefineResume) -> Self {
        RefineCkpt {
            next_epoch: resume.next_epoch,
            state: resume.state.clone(),
            velocities: resume.velocities.clone(),
            stats: resume.stats.clone(),
        }
    }

    /// Converts the payload back into a resume snapshot.
    pub fn into_resume(self) -> RefineResume {
        RefineResume {
            next_epoch: self.next_epoch,
            state: self.state,
            velocities: self.velocities,
            stats: self.stats,
        }
    }

    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_usize(self.next_epoch);
        put_state(&mut w, &self.state);
        w.put_usize(self.velocities.len());
        for v in &self.velocities {
            put_tensor(&mut w, v);
        }
        put_epoch_stats(&mut w, &self.stats);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`RefineCkpt::encode`].
    ///
    /// # Errors
    ///
    /// Returns a decode error for truncated or malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut r = ByteReader::new(bytes);
        let next_epoch = r.get_usize()?;
        let state = get_state(&mut r)?;
        let n = r.get_usize()?;
        let mut velocities = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            velocities.push(get_tensor(&mut r)?);
        }
        let stats = get_epoch_stats(&mut r)?;
        trailing(&r, "refine checkpoint")?;
        Ok(RefineCkpt {
            next_epoch,
            state,
            velocities,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scores() -> ImportanceScores {
        ImportanceScores {
            num_classes: 3,
            units: vec![
                UnitScores {
                    name: "fc1".into(),
                    tap: "r1".into(),
                    out_channels: 2,
                    weights_per_filter: 4,
                    neurons_per_filter: 1,
                    gamma: vec![0.5, 2.25],
                    phi: vec![0.5, 2.25],
                    beta_filter: vec![vec![0.0, 0.5, 1.0], vec![1.0, 0.75, 0.25]],
                },
                UnitScores {
                    name: "fc2".into(),
                    tap: "r2".into(),
                    out_channels: 1,
                    weights_per_filter: 2,
                    neurons_per_filter: 1,
                    gamma: vec![3.0],
                    phi: vec![3.0],
                    beta_filter: vec![],
                },
            ],
        }
    }

    fn sample_outcome() -> SearchOutcome {
        let mut arr = BitArrangement::new();
        arr.push(UnitArrangement {
            name: "fc1".into(),
            bits: vec![BitWidth::new(0).unwrap(), BitWidth::new(4).unwrap()],
            weights_per_filter: 4,
        });
        SearchOutcome {
            thresholds: vec![0.1, 0.2, 0.3, 0.4],
            arrangement: arr,
            trace: vec![SearchStep {
                threshold_index: 0,
                threshold: 0.1,
                accuracy: 0.75,
                avg_bits: 2.0,
                squeeze: false,
            }],
            final_avg_bits: 2.0,
            final_probe_accuracy: 0.75,
            probe_count: 2,
            probe_cache_hits: 1,
            threshold_summaries: vec![ThresholdSummary {
                threshold_index: 0,
                probes: 1,
                squeeze_moves: 0,
                final_position: 0.1,
                last_probe_accuracy: 0.75,
            }],
            budget_exhausted: Some("probe budget exhausted after 2 probes".into()),
        }
    }

    fn sample_state() -> StateDict {
        let mut net = {
            use cbq_nn::layers::Linear;
            use cbq_nn::Sequential;
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            let mut rng = StdRng::seed_from_u64(5);
            let mut net = Sequential::new("n");
            net.push(Linear::new("fc", 3, 2, true, &mut rng).unwrap());
            net
        };
        cbq_nn::state_dict(&mut net)
    }

    #[test]
    fn scores_ckpt_round_trip_is_bit_exact() {
        let ckpt = ScoresCkpt {
            fp_accuracy: 0.875,
            teacher: Tensor::from_vec(vec![0.25, 0.75, 0.5, 0.5], &[2, 2]).unwrap(),
            scores: sample_scores(),
        };
        let decoded = ScoresCkpt::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn search_ckpt_round_trip_preserves_budget_reason() {
        let ckpt = SearchCkpt {
            outcome: sample_outcome(),
            pre_refine_accuracy: 0.625,
        };
        let decoded = SearchCkpt::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);

        let mut no_budget = ckpt.clone();
        no_budget.outcome.budget_exhausted = None;
        let decoded = SearchCkpt::decode(&no_budget.encode()).unwrap();
        assert_eq!(decoded, no_budget);
    }

    #[test]
    fn calibrate_and_pretrain_round_trip() {
        let cal = CalibrateCkpt {
            clips: vec![("r1".into(), 1.5), ("r2".into(), 0.0)],
        };
        assert_eq!(CalibrateCkpt::decode(&cal.encode()).unwrap(), cal);

        let pre = PretrainCkpt {
            state: sample_state(),
        };
        assert_eq!(PretrainCkpt::decode(&pre.encode()).unwrap(), pre);
    }

    #[test]
    fn refine_ckpt_round_trip() {
        let ckpt = RefineCkpt {
            next_epoch: 3,
            state: sample_state(),
            velocities: vec![Tensor::from_vec(vec![0.1, -0.2], &[2]).unwrap()],
            stats: vec![
                EpochStats {
                    epoch: 0,
                    loss: 1.5,
                    train_accuracy: 0.5,
                },
                EpochStats {
                    epoch: 1,
                    loss: 1.0,
                    train_accuracy: 0.625,
                },
            ],
        };
        let decoded = RefineCkpt::decode(&ckpt.encode()).unwrap();
        assert_eq!(decoded, ckpt);
    }

    #[test]
    fn truncation_errors_at_every_cut_never_panics() {
        let full = SearchCkpt {
            outcome: sample_outcome(),
            pre_refine_accuracy: 0.625,
        }
        .encode();
        for cut in 0..full.len() {
            assert!(
                SearchCkpt::decode(&full[..cut]).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = CalibrateCkpt { clips: vec![] }.encode();
        bytes.push(0);
        assert!(CalibrateCkpt::decode(&bytes).is_err());
    }
}
