//! Deterministic synthetic traffic with a controllable class mix.
//!
//! The drift bench and the observability tests need traffic whose class
//! mix is *exact*, not sampled: a stationary phase must produce windows
//! whose observed mix equals the baseline to the last count (so the
//! zero-false-positive gate is robust), and a scheduled shift must move
//! the mix by a known amount. So there is no RNG anywhere — per-window
//! class counts come from largest-remainder apportionment and the
//! interleaving is a greedy most-remaining-first schedule, both with
//! ties broken by class index.

use crate::error::{Result, ServeError};

/// Deterministic labeled-sample source: per-class pools fed round-robin
/// into windows with an exactly-apportioned class mix.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    pools: Vec<Vec<Vec<f32>>>,
    cursors: Vec<usize>,
}

/// Largest-remainder apportionment of `n` requests over `mix` (ties by
/// class index): the counts sum to exactly `n` and are the closest
/// integer realization of the mix.
pub fn apportion(mix: &[f64], n: usize) -> Vec<usize> {
    let total: f64 = mix.iter().sum();
    if mix.is_empty() || total <= 0.0 {
        return vec![0; mix.len()];
    }
    let quotas: Vec<f64> = mix.iter().map(|&p| p / total * n as f64).collect();
    let mut counts: Vec<usize> = quotas.iter().map(|&q| q.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Hand the leftover slots to the largest remainders, ties by index.
    let mut order: Vec<usize> = (0..mix.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = quotas[a] - quotas[a].floor();
        let rb = quotas[b] - quotas[b].floor();
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &c in order.iter().cycle().take(n - assigned) {
        counts[c] += 1;
    }
    counts
}

/// The class mix `apportion` actually realizes for `(mix, n)` — exact
/// fractions, suitable as a drift baseline that makes stationary windows
/// score an L1 of exactly zero.
pub fn achieved_mix(mix: &[f64], n: usize) -> Vec<f64> {
    apportion(mix, n)
        .into_iter()
        .map(|c| c as f64 / n.max(1) as f64)
        .collect()
}

impl TrafficGenerator {
    /// Builds per-class pools from labeled samples. Labels at or beyond
    /// `classes` are rejected, as is any class left without samples —
    /// every class must be producible on demand.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] on zero classes, out-of-range
    /// labels, or an empty class pool.
    pub fn new(samples: &[(Vec<f32>, usize)], classes: usize) -> Result<TrafficGenerator> {
        if classes == 0 {
            return Err(ServeError::InvalidConfig(
                "traffic generator needs at least one class".into(),
            ));
        }
        let mut pools = vec![Vec::new(); classes];
        for (sample, label) in samples {
            let pool = pools.get_mut(*label).ok_or_else(|| {
                ServeError::InvalidConfig(format!(
                    "label {label} out of range for {classes} classes"
                ))
            })?;
            pool.push(sample.clone());
        }
        if let Some(empty) = pools.iter().position(Vec::is_empty) {
            return Err(ServeError::InvalidConfig(format!(
                "class {empty} has no samples to draw from"
            )));
        }
        Ok(TrafficGenerator {
            cursors: vec![0; classes],
            pools,
        })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.pools.len()
    }

    /// Produces one window of `n` labeled samples at class mix `mix`
    /// (weights beyond `classes` are ignored; missing weights count as
    /// zero). Counts are exact per [`apportion`]; classes interleave
    /// most-remaining-first; samples come round-robin from each class
    /// pool, with cursors persisting across windows.
    pub fn window(&mut self, mix: &[f64], n: usize) -> Vec<(Vec<f32>, usize)> {
        let mut weights = vec![0.0; self.pools.len()];
        for (w, &m) in weights.iter_mut().zip(mix.iter()) {
            *w = m;
        }
        let mut remaining = apportion(&weights, n);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let c = remaining
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c)
                .expect("at least one class");
            if remaining[c] == 0 {
                break; // mix summed to zero: nothing left to emit
            }
            remaining[c] -= 1;
            let pool = &self.pools[c];
            let sample = pool[self.cursors[c] % pool.len()].clone();
            self.cursors[c] += 1;
            out.push((sample, c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(classes: usize, per_class: usize, features: usize) -> Vec<(Vec<f32>, usize)> {
        let mut out = Vec::new();
        for c in 0..classes {
            for k in 0..per_class {
                out.push((vec![(c * 10 + k) as f32; features], c));
            }
        }
        out
    }

    #[test]
    fn apportionment_is_exact_and_tie_stable() {
        assert_eq!(apportion(&[0.5, 0.25, 0.25], 8), vec![4, 2, 2]);
        assert_eq!(apportion(&[1.0, 1.0, 1.0], 8), vec![3, 3, 2]);
        assert_eq!(apportion(&[0.0, 1.0], 5), vec![0, 5]);
        let counts = apportion(&[0.3, 0.3, 0.4], 7);
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert_eq!(achieved_mix(&[0.5, 0.5], 4), vec![0.5, 0.5]);
    }

    #[test]
    fn windows_realize_the_mix_exactly_and_deterministically() {
        // Three samples per class: window counts (4, 2, 2) leave every
        // cursor mid-pool, so the next window must draw different rows.
        let data = labeled(3, 3, 4);
        let mut gen = TrafficGenerator::new(&data, 3).unwrap();
        let w = gen.window(&[0.5, 0.25, 0.25], 8);
        assert_eq!(w.len(), 8);
        let mut counts = [0usize; 3];
        for (_, label) in &w {
            counts[*label] += 1;
        }
        assert_eq!(counts, [4, 2, 2]);
        // Fresh generator, same calls, same bytes.
        let mut gen2 = TrafficGenerator::new(&data, 3).unwrap();
        assert_eq!(gen2.window(&[0.5, 0.25, 0.25], 8), w);
        // Cursors persist: the next window reuses the pool round-robin.
        let w2 = gen.window(&[0.5, 0.25, 0.25], 8);
        assert_ne!(w, w2, "pools rotate across windows");
    }

    #[test]
    fn interleaving_spreads_classes() {
        let mut gen = TrafficGenerator::new(&labeled(2, 1, 1), 2).unwrap();
        let labels: Vec<usize> = gen.window(&[0.5, 0.5], 6).iter().map(|s| s.1).collect();
        // Most-remaining-first alternates under an even mix.
        assert_eq!(labels, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert!(TrafficGenerator::new(&labeled(2, 1, 1), 0).is_err());
        assert!(TrafficGenerator::new(&[(vec![1.0], 5)], 2).is_err());
        assert!(
            TrafficGenerator::new(&[(vec![1.0], 0)], 2).is_err(),
            "class 1 has no samples"
        );
    }
}
