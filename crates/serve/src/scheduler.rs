//! Dynamic micro-batching: the bounded admission queue and the
//! `max_batch`/`max_wait` coalescing policy.
//!
//! Requests enter through [`BatchScheduler::submit`]; workers block in
//! [`BatchScheduler::next_batch`] until a batch is *ready*:
//!
//! - `max_batch` same-model requests are queued, or
//! - the oldest queued request has aged past `max_wait` on the injected
//!   [`ServeClock`], or
//! - the scheduler is draining (shutdown flushes whatever is left).
//!
//! A formed batch is the front request plus up to `max_batch - 1` later
//! requests *for the same model version*, in admission order — FIFO is
//! preserved per model, and a batch never mixes versions, so reloading a
//! model mid-flight cannot change what an admitted request executes
//! against.
//!
//! Admission is bounded: beyond `queue_capacity` waiting requests,
//! [`submit`](BatchScheduler::submit) fails fast with
//! [`ServeError::Overloaded`] instead of buffering without bound.

use crate::clock::ServeClock;
use crate::error::{Result, ServeError};
use crate::registry::ModelHandle;
use crate::server::InferResponse;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How a manual-clock wait polls: short real sleeps between re-checks of
/// the logical clock. Correctness never depends on this value — a batch
/// can only form when the *logical* readiness condition holds.
pub(crate) const MANUAL_POLL: Duration = Duration::from_millis(1);

/// Micro-batching policy knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest micro-batch a worker executes at once.
    pub max_batch: usize,
    /// Longest a request may wait for co-batchable peers before the
    /// scheduler dispatches a partial batch.
    pub max_wait: Duration,
    /// Bound on waiting requests; beyond it submissions are rejected.
    pub queue_capacity: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
        }
    }
}

impl BatchPolicy {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero batch size or capacity.
    pub fn validate(&self) -> Result<()> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// One admitted request waiting for (or riding in) a micro-batch.
pub(crate) struct Pending {
    pub(crate) id: u64,
    pub(crate) model: ModelHandle,
    pub(crate) sample: Vec<f32>,
    /// Admission sequence number, assigned under the scheduler lock at
    /// [`BatchScheduler::submit`] — the deterministic total order the
    /// observability layer keys windows and traces on.
    pub(crate) seq: u64,
    /// Ground-truth class, when the caller supplied one (accuracy
    /// telemetry).
    pub(crate) label: Option<usize>,
    pub(crate) enqueued: Duration,
    pub(crate) reply: Sender<Result<InferResponse>>,
}

/// A dispatched micro-batch plus its scheduling timestamps, all on the
/// injected clock: `dispatched` is when the batch formed, `front_enqueued`
/// when its oldest member was admitted (their difference is the batch
/// coalescing wait).
pub(crate) struct Batch {
    pub(crate) requests: Vec<Pending>,
    pub(crate) dispatched: Duration,
    pub(crate) front_enqueued: Duration,
}

/// A seq-pinned admission rewrite: from `cutover_seq` on, requests
/// naming `name` are re-pointed at `to` (a newer version of the same
/// model). Installed by the requant worker at a window boundary so a
/// cutover never splits an observation window.
struct Route {
    name: String,
    cutover_seq: u64,
    to: ModelHandle,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Pending>,
    draining: bool,
    accepted: u64,
    rejected: u64,
    routes: Vec<Route>,
}

/// The shared scheduler: a bounded queue, a condvar, and the policy.
pub struct BatchScheduler {
    state: Mutex<QueueState>,
    ready: Condvar,
    policy: BatchPolicy,
    clock: Arc<dyn ServeClock>,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl BatchScheduler {
    /// Creates a scheduler with the given policy and time source.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the policy is invalid.
    pub fn new(policy: BatchPolicy, clock: Arc<dyn ServeClock>) -> Result<BatchScheduler> {
        policy.validate()?;
        Ok(BatchScheduler {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            policy,
            clock,
        })
    }

    /// The active policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Current queue depth (waiting requests).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .expect("scheduler lock poisoned")
            .queue
            .len()
    }

    /// Lifetime admission counters: `(accepted, rejected)`.
    pub fn admission_counts(&self) -> (u64, u64) {
        let st = self.state.lock().expect("scheduler lock poisoned");
        (st.accepted, st.rejected)
    }

    /// Admits one request, or rejects it without blocking. The request's
    /// admission sequence number (`Pending::seq`, assigned here under the
    /// lock) is dense over accepted requests — rejections don't consume
    /// one — which is what lets the observability layer treat `seq /
    /// window_size` as a complete window membership rule.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] while draining,
    /// [`ServeError::Overloaded`] when the queue is at capacity.
    pub(crate) fn submit(&self, mut pending: Pending) -> Result<(u64, usize)> {
        let mut st = self.state.lock().expect("scheduler lock poisoned");
        if st.draining {
            return Err(ServeError::ShuttingDown);
        }
        if st.queue.len() >= self.policy.queue_capacity {
            st.rejected += 1;
            return Err(ServeError::Overloaded {
                capacity: self.policy.queue_capacity,
            });
        }
        let seq = st.accepted;
        pending.seq = seq;
        st.accepted += 1;
        // Seq-pinned routing: the latest route whose cutover has been
        // reached rewrites the target version. Admission order decides —
        // request `seq` executes against the same version no matter how
        // workers interleave afterwards.
        for route in st.routes.iter().rev() {
            if seq >= route.cutover_seq && route.name == pending.model.name() {
                if pending.model != route.to {
                    pending.model = route.to.clone();
                }
                break;
            }
        }
        st.queue.push_back(pending);
        let depth = st.queue.len();
        drop(st);
        self.ready.notify_one();
        Ok((seq, depth))
    }

    /// Blocks until a micro-batch is ready and returns it, or `None` once
    /// the scheduler is draining and the queue is empty (worker exit).
    pub(crate) fn next_batch(&self) -> Option<Batch> {
        let mut st = self.state.lock().expect("scheduler lock poisoned");
        loop {
            if let Some(front) = st.queue.front() {
                let same_model = st.queue.iter().filter(|p| p.model == front.model).count();
                let front_enqueued = front.enqueued;
                let deadline = front_enqueued + self.policy.max_wait;
                let now = self.clock.now();
                if st.draining || same_model >= self.policy.max_batch || now >= deadline {
                    let target = front.model.clone();
                    let mut batch = Vec::with_capacity(same_model.min(self.policy.max_batch));
                    batch.push(st.queue.pop_front().expect("front checked above"));
                    let mut i = 0;
                    while batch.len() < self.policy.max_batch && i < st.queue.len() {
                        if st.queue[i].model == target {
                            batch.push(st.queue.remove(i).expect("index in bounds"));
                        } else {
                            i += 1;
                        }
                    }
                    let more = !st.queue.is_empty();
                    drop(st);
                    if more {
                        // Another model's requests may already be ready.
                        self.ready.notify_one();
                    }
                    return Some(Batch {
                        requests: batch,
                        dispatched: now,
                        front_enqueued,
                    });
                }
                // Not ready: sleep until the deadline (system clock) or
                // poll the logical clock (manual clock in tests).
                let timeout = if self.clock.is_manual() {
                    MANUAL_POLL
                } else {
                    deadline.saturating_sub(now)
                };
                let (guard, _) = self
                    .ready
                    .wait_timeout(st, timeout)
                    .expect("scheduler lock poisoned");
                st = guard;
            } else if st.draining {
                return None;
            } else {
                st = self.ready.wait(st).expect("scheduler lock poisoned");
            }
        }
    }

    /// Installs a route that re-points future admissions of `to`'s model
    /// name at `to`, starting at the next multiple of `window` at or
    /// after the current admission count, and returns that cutover seq.
    /// Aligning to a window boundary means no observation window ever
    /// mixes versions; requests already admitted keep their version
    /// (batches never mix versions either — the coalescer matches on the
    /// full handle).
    pub(crate) fn install_route_at_boundary(&self, to: &ModelHandle, window: u64) -> u64 {
        let w = window.max(1);
        let mut st = self.state.lock().expect("scheduler lock poisoned");
        let cutover_seq = st.accepted.div_ceil(w) * w;
        st.routes.push(Route {
            name: to.name().to_string(),
            cutover_seq,
            to: to.clone(),
        });
        cutover_seq
    }

    /// Stops admission and flushes: queued requests are dispatched
    /// immediately (ignoring `max_wait`), then workers see `None`.
    pub(crate) fn drain(&self) {
        let mut st = self.state.lock().expect("scheduler lock poisoned");
        st.draining = true;
        drop(st);
        self.ready.notify_all();
    }
}
