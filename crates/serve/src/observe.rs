//! Request-scoped tracing and per-class serve observability.
//!
//! Everything here is *derived state*: the scheduler assigns each
//! admitted request a dense admission sequence number, workers report
//! per-stage timings on the injected clock, and this module folds those
//! into three deterministic artifacts:
//!
//! - [`RequestTrace`] — one JSON line per request with span timings
//!   (queue wait, batch-coalescing wait, compute) keyed by `seq`;
//! - windowed per-class counters ([`cbq_telemetry::WindowSet`]) sealed in
//!   admission order, feeding the drift detector;
//! - a [`MetricsSnapshot`] JSON document re-rendered (atomically) on
//!   every window seal and at drain.
//!
//! Determinism contract: window membership is `seq / window_size`,
//! windows seal strictly in index order, and every statistic is computed
//! from merged integer counters in ascending class order — so traces and
//! snapshots are **byte-identical at any worker count** when driven by a
//! manual clock.

use crate::requant::{RequantDecision, RequantJob, RequantReport};
use cbq_telemetry::{json, ClassWindow, DriftConfig, DriftReport, LatencySummary, WindowSet};
use std::path::PathBuf;

/// Schema tag written into every metrics snapshot.
pub const METRICS_SCHEMA: &str = "cbq.metrics.v1";

/// Per-class observability knobs for [`crate::Server::start_observed`].
#[derive(Debug, Clone, Default)]
pub struct ObserveConfig {
    /// Classes to track; `0` disables per-class observation entirely
    /// (the stage histograms in [`crate::ServeStats`] are always on).
    pub classes: usize,
    /// Admitted requests per window. Windows seal in index order once
    /// every member resolves, so smaller windows flag drift sooner at
    /// the cost of noisier statistics.
    pub window: u64,
    /// Baseline class mix for drift detection (any nonnegative weights).
    /// `None` disables the drift detector; models carry a calibration
    /// mix in their artifact ([`crate::ModelArtifact::baseline_mix`])
    /// that callers typically copy here.
    pub baseline: Option<Vec<f64>>,
    /// Drift thresholds.
    pub drift: DriftConfig,
    /// Collect a [`RequestTrace`] per request (returned in
    /// [`crate::ServeStats::traces`], written to `trace_path` if set).
    pub trace: bool,
    /// Where to write the JSONL trace at drain (atomic write; implies
    /// `trace`).
    pub trace_path: Option<PathBuf>,
    /// Where to (re)write the metrics snapshot on every window seal and
    /// at drain (atomic write).
    pub metrics_path: Option<PathBuf>,
}

impl ObserveConfig {
    /// Observation disabled: no windows, no drift, no traces.
    pub fn disabled() -> Self {
        ObserveConfig::default()
    }

    /// Observation for `classes` classes with a 64-request window and
    /// default drift thresholds.
    pub fn for_classes(classes: usize) -> Self {
        ObserveConfig {
            classes,
            window: 64,
            ..ObserveConfig::default()
        }
    }

    /// Whether any per-class observation is active.
    pub fn enabled(&self) -> bool {
        self.classes > 0 && self.window > 0
    }

    /// Whether request traces are collected.
    pub fn tracing(&self) -> bool {
        self.enabled() && (self.trace || self.trace_path.is_some())
    }
}

/// One request's lifecycle through the runtime, all timestamps in
/// microseconds on the server's injected clock.
///
/// Stage identities: `queue_wait = dispatched − enqueued` (admission to
/// batch formation), `batch_wait = dispatched − front_enqueued` (how long
/// the batch's *oldest* member waited — the coalescing cost), `compute =
/// completed − dispatched`, and total latency is `completed − enqueued =
/// queue_wait + compute`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Admission sequence number (dense over accepted requests).
    pub seq: u64,
    /// Caller-visible request id.
    pub id: u64,
    /// `name@vN` of the model version executed against.
    pub model: String,
    /// Observation window this request belongs to (`seq / window_size`).
    pub window: u64,
    /// Admission timestamp.
    pub enqueued_us: u64,
    /// Batch-formation timestamp.
    pub dispatched_us: u64,
    /// Response timestamp.
    pub completed_us: u64,
    /// `dispatched − enqueued`.
    pub queue_wait_us: u64,
    /// `dispatched − front_enqueued` of the batch's oldest member.
    pub batch_wait_us: u64,
    /// `completed − dispatched`.
    pub compute_us: u64,
    /// Requests that rode in the same micro-batch.
    pub batch_size: usize,
    /// Predicted class (argmax); `None` for failed requests.
    pub predicted: Option<usize>,
    /// Ground-truth class, when the caller supplied one.
    pub label: Option<usize>,
    /// Whether the request completed successfully.
    pub ok: bool,
}

impl RequestTrace {
    /// Single-line JSON with a fixed key order — the unit of the
    /// byte-identical trace contract.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<usize>| match v {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"seq\":{},\"id\":{},\"model\":{},\"window\":{},\"enqueued_us\":{},\
             \"dispatched_us\":{},\"completed_us\":{},\"queue_wait_us\":{},\
             \"batch_wait_us\":{},\"compute_us\":{},\"batch\":{},\"predicted\":{},\
             \"label\":{},\"ok\":{}}}",
            self.seq,
            self.id,
            json::string(&self.model),
            self.window,
            self.enqueued_us,
            self.dispatched_us,
            self.completed_us,
            self.queue_wait_us,
            self.batch_wait_us,
            self.compute_us,
            self.batch_size,
            opt(self.predicted),
            opt(self.label),
            self.ok,
        )
    }
}

/// Renders the full JSONL trace document: one line per trace, ascending
/// `seq`. The caller passes traces already sorted.
pub(crate) fn render_trace_jsonl(traces: &[RequestTrace]) -> String {
    let mut out = String::with_capacity(traces.len() * 160);
    for t in traces {
        out.push_str(&t.to_json());
        out.push('\n');
    }
    out
}

fn mix_json(mix: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, &p) in mix.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json::number(p));
    }
    out.push(']');
    out
}

fn latency_json(s: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        s.count,
        json::number(s.mean_us),
        s.p50_us,
        s.p95_us,
        s.p99_us,
        s.max_us
    )
}

fn window_json(w: &ClassWindow) -> String {
    let accuracy = match w.accuracy() {
        Some(a) => mix_json(&a),
        None => "null".to_string(),
    };
    let overall = match w.overall_accuracy() {
        Some(a) => json::number(a),
        None => "null".to_string(),
    };
    format!(
        "{{\"index\": {}, \"completed\": {}, \"errors\": {}, \"mix\": {}, \"accuracy\": {}, \"overall_accuracy\": {}, \"latency\": {}}}",
        w.index,
        w.completed,
        w.errors,
        mix_json(&w.mix()),
        accuracy,
        overall,
        latency_json(&w.latency.summary())
    )
}

fn drift_json(r: &DriftReport) -> String {
    format!(
        "{{\"window\": {}, \"samples\": {}, \"l1\": {}, \"chi2\": {}, \"skipped\": {}, \"flagged\": {}}}",
        r.window,
        r.samples,
        json::number(r.l1),
        json::number(r.chi2),
        r.skipped,
        r.flagged
    )
}

fn counts_json(counts: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, &c) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&c.to_string());
    }
    out.push(']');
    out
}

fn decision_json(d: &RequantDecision) -> String {
    match d {
        RequantDecision::Pending => "{\"kind\": \"pending\"}".to_string(),
        RequantDecision::Cutover { seq, version } => format!(
            "{{\"kind\": \"cutover\", \"seq\": {seq}, \"version\": {version}}}"
        ),
        RequantDecision::Rejected { delta } => {
            format!("{{\"kind\": \"rejected\", \"delta\": {delta}}}")
        }
        RequantDecision::Aborted { phase } => format!(
            "{{\"kind\": \"aborted\", \"phase\": {}}}",
            json::string(phase)
        ),
    }
}

fn requant_job_json(j: &RequantJob) -> String {
    let (labeled, incumbent_correct, candidate_correct) = j.shadow.totals();
    let mut windows = String::from("[");
    for (i, w) in j.shadow.windows().enumerate() {
        if i > 0 {
            windows.push(',');
        }
        windows.push_str(&format!(
            "{{\"index\": {}, \"labeled\": {}, \"incumbent_correct\": {}, \"candidate_correct\": {}}}",
            w.index,
            w.labeled(),
            w.incumbent_correct(),
            w.candidate_correct()
        ));
    }
    windows.push(']');
    format!(
        "{{\"trigger_window\": {}, \"observed_mix\": {}, \"from_checkpoint\": {}, \"labeled\": {}, \"incumbent_correct\": {}, \"candidate_correct\": {}, \"delta\": {}, \"shadow_windows\": {}, \"decision\": {}}}",
        j.trigger_window,
        counts_json(&j.observed_mix),
        j.from_checkpoint,
        labeled,
        incumbent_correct,
        candidate_correct,
        j.shadow.delta(),
        windows,
        decision_json(&j.decision)
    )
}

fn requant_json(r: &RequantReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("    \"triggered\": {},\n", r.triggered));
    out.push_str(&format!("    \"built\": {},\n", r.built));
    out.push_str(&format!("    \"cutovers\": {},\n", r.cutovers));
    out.push_str(&format!("    \"rejected\": {},\n", r.rejected));
    out.push_str(&format!("    \"aborted\": {},\n", r.aborted));
    out.push_str(&format!(
        "    \"checkpoint_hits\": {},\n",
        r.checkpoint_hits
    ));
    out.push_str("    \"jobs\": [\n");
    for (i, j) in r.jobs.iter().enumerate() {
        out.push_str(&format!(
            "      {}{}\n",
            requant_job_json(j),
            if i + 1 < r.jobs.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  }");
    out
}

/// Renders the metrics snapshot document: cumulative per-class state,
/// every sealed window, and all drift verdicts so far. The bytes are a
/// pure function of the sealed state — deliberately independent of *how
/// many times* a snapshot was written (several windows can seal in one
/// event under reordered completions), so the file is byte-identical at
/// any worker count. The `requant` section appears only in the final
/// drain-time snapshot of an adaptive server (`None` mid-run keeps the
/// bytes identical to a non-adaptive server's).
pub(crate) fn render_snapshot(
    set: &WindowSet,
    drift: &[DriftReport],
    requant: Option<&RequantReport>,
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema\": {},\n",
        json::string(METRICS_SCHEMA)
    ));
    out.push_str(&format!("  \"classes\": {},\n", set.classes()));
    out.push_str(&format!("  \"window_size\": {},\n", set.window_size()));
    out.push_str(&format!("  \"sealed_windows\": {},\n", set.sealed().len()));
    out.push_str(&format!(
        "  \"cumulative\": {},\n",
        window_json(&set.cumulative())
    ));
    out.push_str("  \"windows\": [\n");
    for (i, w) in set.sealed().iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            window_json(w),
            if i + 1 < set.sealed().len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"drift\": [\n");
    for (i, r) in drift.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            drift_json(r),
            if i + 1 < drift.len() { "," } else { "" }
        ));
    }
    match requant {
        None => out.push_str("  ]\n"),
        Some(r) => {
            out.push_str("  ],\n");
            out.push_str(&format!("  \"requant\": {}\n", requant_json(r)));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(seq: u64) -> RequestTrace {
        RequestTrace {
            seq,
            id: seq + 1,
            model: "m@v1".into(),
            window: 0,
            enqueued_us: 10,
            dispatched_us: 30,
            completed_us: 70,
            queue_wait_us: 20,
            batch_wait_us: 20,
            compute_us: 40,
            batch_size: 2,
            predicted: Some(1),
            label: None,
            ok: true,
        }
    }

    #[test]
    fn trace_json_has_fixed_key_order_and_null_options() {
        let j = trace(0).to_json();
        assert!(
            j.starts_with("{\"seq\":0,\"id\":1,\"model\":\"m@v1\""),
            "{j}"
        );
        assert!(j.contains("\"queue_wait_us\":20,\"batch_wait_us\":20,\"compute_us\":40"));
        assert!(j.contains("\"predicted\":1,\"label\":null,\"ok\":true"));
        let mut failed = trace(3);
        failed.predicted = None;
        failed.ok = false;
        assert!(failed
            .to_json()
            .contains("\"predicted\":null,\"label\":null,\"ok\":false"));
    }

    #[test]
    fn trace_jsonl_is_one_line_per_request() {
        let doc = render_trace_jsonl(&[trace(0), trace(1)]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"seq\":1"));
    }

    #[test]
    fn snapshot_renders_windows_and_drift() {
        let mut set = WindowSet::new(2, 4);
        for seq in 0..4 {
            set.record(seq, (seq % 2) as usize, Some(0), 10);
        }
        let drift = vec![DriftReport {
            window: 0,
            samples: 4,
            l1: 0.0,
            chi2: 0.0,
            skipped: true,
            flagged: false,
        }];
        let doc = render_snapshot(&set, &drift, None);
        assert!(doc.contains("\"schema\": \"cbq.metrics.v1\""), "{doc}");
        assert!(doc.contains("\"sealed_windows\": 1"), "{doc}");
        assert!(doc.contains("\"mix\": [0.5,0.5]"), "{doc}");
        assert!(doc.contains("\"skipped\": true"), "{doc}");
        // Deterministic bytes; no requant section unless a report exists.
        assert_eq!(doc, render_snapshot(&set, &drift, None));
        assert!(!doc.contains("\"requant\""), "{doc}");
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces in {doc}"
        );
    }

    #[test]
    fn snapshot_requant_section_renders_jobs_and_decisions() {
        let set = WindowSet::new(2, 4);
        let mut shadow = cbq_telemetry::ShadowSet::new();
        shadow.record(4, false, true);
        shadow.record(5, true, true);
        let report = RequantReport {
            jobs: vec![
                RequantJob {
                    trigger_window: 3,
                    observed_mix: vec![7, 1],
                    from_checkpoint: true,
                    shadow,
                    decision: RequantDecision::Cutover { seq: 24, version: 2 },
                },
                RequantJob {
                    trigger_window: 9,
                    observed_mix: vec![4, 4],
                    from_checkpoint: false,
                    shadow: cbq_telemetry::ShadowSet::new(),
                    decision: RequantDecision::Rejected { delta: -1 },
                },
            ],
            triggered: 2,
            built: 2,
            cutovers: 1,
            rejected: 1,
            aborted: 0,
            checkpoint_hits: 1,
        };
        let doc = render_snapshot(&set, &[], Some(&report));
        assert!(doc.contains("\"requant\""), "{doc}");
        assert!(doc.contains("\"observed_mix\": [7,1]"), "{doc}");
        assert!(
            doc.contains("\"decision\": {\"kind\": \"cutover\", \"seq\": 24, \"version\": 2}"),
            "{doc}"
        );
        assert!(
            doc.contains("\"decision\": {\"kind\": \"rejected\", \"delta\": -1}"),
            "{doc}"
        );
        assert!(doc.contains("\"checkpoint_hits\": 1"), "{doc}");
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces in {doc}"
        );
    }

    #[test]
    fn disabled_config_reports_disabled() {
        assert!(!ObserveConfig::disabled().enabled());
        assert!(!ObserveConfig::disabled().tracing());
        let mut c = ObserveConfig::for_classes(3);
        assert!(c.enabled());
        assert!(!c.tracing());
        c.trace = true;
        assert!(c.tracing());
    }
}
