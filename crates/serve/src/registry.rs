//! Versioned model registry: artifact → executable backend.
//!
//! Loading an artifact compiles it into one of three backends and parks
//! the result behind an immutable [`LoadedModel`] template. Workers clone
//! the template once per `(worker, model-version)` pair and keep the
//! clone warm next to a private scratch arena; versioned [`ModelHandle`]s
//! mean an in-flight request keeps executing against the version it was
//! admitted with even if the name is reloaded mid-flight.

use crate::artifact::ModelArtifact;
use crate::error::{Result, ServeError};
use cbq_nn::{infer_logits_scratch, load_state_dict, Layer, Phase, Sequential};
use cbq_quant::{
    install_act_quant, install_arrangement, restore_act_clip_bounds, set_act_bits,
    set_act_calibration, BitWidth, IntegerNet, PackedIntegerNet, PackedModelCodes,
};
use cbq_tensor::{Scratch, Tensor};
use std::collections::HashMap;
use std::sync::{Mutex, RwLock};

/// Which execution engine a model is served through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Raw float weights, no quantization anywhere.
    Float,
    /// Fake-quantized weights + activation quantizers (training-time
    /// semantics, value domain).
    FakeQuant,
    /// Integer-code execution via [`cbq_quant::IntegerNet`].
    Integer,
    /// Packed low-bit execution via [`cbq_quant::PackedIntegerNet`]:
    /// bitplane XNOR/popcount for 1-bit rows, nibble i8 MAC for 2–4-bit
    /// rows. Bit-identical in output to [`Backend::Integer`].
    PackedInteger,
}

impl Backend {
    /// Stable lowercase name (CLI flags, telemetry fields, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Float => "float",
            Backend::FakeQuant => "fake-quant",
            Backend::Integer => "integer",
            Backend::PackedInteger => "packed",
        }
    }

    /// Parses a backend name as written by [`Backend::as_str`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] on unknown names.
    pub fn parse(s: &str) -> Result<Backend> {
        match s {
            "float" => Ok(Backend::Float),
            "fake-quant" | "fakequant" => Ok(Backend::FakeQuant),
            "integer" | "int" => Ok(Backend::Integer),
            "packed" | "packed-integer" => Ok(Backend::PackedInteger),
            other => Err(ServeError::InvalidConfig(format!(
                "unknown backend {other:?}"
            ))),
        }
    }
}

/// A pinned reference to one loaded model version.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelHandle {
    name: String,
    version: u64,
}

impl ModelHandle {
    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonic version under that name (1-based).
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl std::fmt::Display for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@v{}", self.name, self.version)
    }
}

/// The compiled execution engine held by a [`LoadedModel`] template and
/// cloned into each worker.
#[derive(Debug, Clone)]
pub(crate) enum Engine {
    /// Float or fake-quant: a `Sequential` run at `Phase::Infer`.
    Net(Sequential),
    /// Integer-code network.
    Integer(IntegerNet),
    /// Packed low-bit integer network.
    Packed(PackedIntegerNet),
}

impl Engine {
    /// Runs `batch` (`m * input_len` values, samples back to back) and
    /// returns `[m, classes]` logits owning a pooled buffer.
    pub(crate) fn infer(
        &mut self,
        batch: &[f32],
        sample_shape: &[usize],
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        match self {
            Engine::Net(net) => Ok(infer_logits_scratch(net, batch, sample_shape, scratch)?),
            Engine::Integer(net) => {
                let row = net.in_features();
                if row == 0 || !batch.len().is_multiple_of(row) {
                    return Err(ServeError::BadRequest(format!(
                        "batch of {} values is not a whole number of {row}-feature samples",
                        batch.len()
                    )));
                }
                let m = batch.len() / row;
                let x = Tensor::from_vec(scratch.take_f32_copy(batch), &[m, row])?;
                Ok(net.forward_scratch(x, scratch)?)
            }
            Engine::Packed(net) => {
                let row = net.in_features();
                if row == 0 || !batch.len().is_multiple_of(row) {
                    return Err(ServeError::BadRequest(format!(
                        "batch of {} values is not a whole number of {row}-feature samples",
                        batch.len()
                    )));
                }
                let m = batch.len() / row;
                let x = Tensor::from_vec(scratch.take_f32_copy(batch), &[m, row])?;
                Ok(net.forward_scratch(x, scratch)?)
            }
        }
    }
}

/// An immutable compiled model version: the template workers clone.
///
/// The engine template sits behind a mutex because `Sequential` trait
/// objects are `Send` but not `Sync`; it is locked only for the one-time
/// per-worker clone, never on the request path.
#[derive(Debug)]
pub struct LoadedModel {
    handle: ModelHandle,
    backend: Backend,
    input_shape: Vec<usize>,
    classes: usize,
    baseline_mix: Option<Vec<f64>>,
    engine: Mutex<Engine>,
}

impl LoadedModel {
    /// The version-pinned handle.
    pub fn handle(&self) -> &ModelHandle {
        &self.handle
    }

    /// Which backend this version executes in.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Per-sample input dims.
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Features per sample.
    pub fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Calibration-time class mix carried by the artifact, if any — the
    /// default drift baseline for this model.
    pub fn baseline_mix(&self) -> Option<&[f64]> {
        self.baseline_mix.as_deref()
    }

    /// Clones the engine for a worker's private use.
    pub(crate) fn instantiate(&self) -> Engine {
        self.engine
            .lock()
            .expect("engine template lock poisoned")
            .clone()
    }
}

/// Single-sample offline reference execution: a fresh engine clone, a
/// fresh arena, one sample — exactly the semantics of the offline
/// `evaluate` path. Serving must match this bit-for-bit regardless of
/// batching, and the test battery + load-gen bench hold it to that.
///
/// # Errors
///
/// Propagates engine errors; rejects samples of the wrong length.
pub fn offline_logits(model: &LoadedModel, sample: &[f32]) -> Result<Vec<f32>> {
    if sample.len() != model.input_len() {
        return Err(ServeError::BadRequest(format!(
            "sample has {} values, model expects {}",
            sample.len(),
            model.input_len()
        )));
    }
    let mut engine = model.instantiate();
    let mut scratch = Scratch::new();
    let logits = engine.infer(sample, &model.input_shape, &mut scratch)?;
    Ok(logits.into_vec())
}

/// Compiles an artifact into a backend engine without registering it —
/// the requant worker shadow-scores candidates through a private engine
/// so no registry version exists until the cutover decision.
pub(crate) fn compile(artifact: &ModelArtifact, backend: Backend) -> Result<(Engine, usize)> {
    let mut net = artifact.arch.build()?;
    load_state_dict(&mut net, &artifact.state)
        .map_err(|e| ServeError::Artifact(format!("state dict does not fit arch: {e}")))?;
    // Probe the output width with a zero batch before any quantizer state
    // is installed (the probe must not touch calibration).
    let classes = probe_classes(&mut net, &artifact.input_shape)?;
    let engine = match backend {
        Backend::Float => Engine::Net(net),
        Backend::FakeQuant | Backend::Integer | Backend::PackedInteger => {
            let quant = artifact.quant.as_ref().ok_or_else(|| {
                ServeError::Artifact(format!(
                    "artifact has no quantization state, required by the {} backend",
                    backend.as_str()
                ))
            })?;
            install_act_quant(&mut net);
            set_act_calibration(&mut net, false);
            restore_act_clip_bounds(&mut net, &quant.act_clips);
            set_act_bits(
                &mut net,
                Some(
                    BitWidth::new(quant.act_bits)
                        .map_err(|e| ServeError::Artifact(format!("act bits: {e}")))?,
                ),
            );
            match backend {
                Backend::FakeQuant => {
                    install_arrangement(&mut net, &quant.arrangement)?;
                    Engine::Net(net)
                }
                Backend::Integer => {
                    Engine::Integer(IntegerNet::compile(&mut net, &quant.arrangement)?)
                }
                _ => {
                    let packed = PackedIntegerNet::compile(&mut net, &quant.arrangement)?;
                    // Quantization is deterministic, so an artifact's
                    // packed section must reproduce the recompiled codes
                    // byte-for-byte; a disagreement means the section and
                    // the state dict belong to different models.
                    if let Some(section) = &artifact.packed {
                        section.verify_against(&packed)?;
                    }
                    Engine::Packed(packed)
                }
            }
        }
    };
    Ok((engine, classes))
}

/// Compiles an artifact's packed weight-code section — what a V3 artifact
/// embeds so the packed backend can verify integrity at load time. A pure
/// function of the artifact's state dict + quantization state.
///
/// # Errors
///
/// [`ServeError::Artifact`] when the artifact carries no quantization
/// state; compile errors otherwise.
pub fn compile_packed_codes(artifact: &ModelArtifact) -> Result<PackedModelCodes> {
    let (engine, _) = compile(artifact, Backend::PackedInteger)?;
    match engine {
        Engine::Packed(net) => Ok(PackedModelCodes::from_net(&net)),
        _ => unreachable!("packed backend compiles to a packed engine"),
    }
}

fn probe_classes(net: &mut Sequential, input_shape: &[usize]) -> Result<usize> {
    let mut shape = Vec::with_capacity(input_shape.len() + 1);
    shape.push(1);
    shape.extend_from_slice(input_shape);
    let x = Tensor::zeros(&shape);
    let logits = net.forward(&x, Phase::Infer)?;
    net.clear_cache();
    if logits.rank() != 2 || logits.shape()[1] == 0 {
        return Err(ServeError::Artifact(format!(
            "model produced {:?} logits for a single sample",
            logits.shape()
        )));
    }
    Ok(logits.shape()[1])
}

/// Thread-safe registry of loaded model versions.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    inner: RwLock<HashMap<String, Vec<std::sync::Arc<LoadedModel>>>>,
}

impl ModelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModelRegistry::default()
    }

    /// Compiles `artifact` into `backend` and registers it under `name`,
    /// returning the new version's handle. Existing versions stay
    /// resolvable through their handles.
    ///
    /// # Errors
    ///
    /// Artifact/compile errors; the registry is unchanged on failure.
    pub fn load(
        &self,
        name: &str,
        artifact: &ModelArtifact,
        backend: Backend,
    ) -> Result<ModelHandle> {
        if name.is_empty() {
            return Err(ServeError::InvalidConfig(
                "model name must be non-empty".into(),
            ));
        }
        let (engine, classes) = compile(artifact, backend)?;
        let mut inner = self.inner.write().expect("registry lock poisoned");
        let versions = inner.entry(name.to_string()).or_default();
        let handle = ModelHandle {
            name: name.to_string(),
            version: versions.len() as u64 + 1,
        };
        versions.push(std::sync::Arc::new(LoadedModel {
            handle: handle.clone(),
            backend,
            input_shape: artifact.input_shape.clone(),
            classes,
            baseline_mix: artifact.baseline_mix.clone(),
            engine: Mutex::new(engine),
        }));
        Ok(handle)
    }

    /// Latest version handle under `name`.
    pub fn latest(&self, name: &str) -> Option<ModelHandle> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner
            .get(name)
            .and_then(|v| v.last())
            .map(|m| m.handle.clone())
    }

    /// Resolves a handle to its compiled model.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when the handle is not registered.
    pub fn get(&self, handle: &ModelHandle) -> Result<std::sync::Arc<LoadedModel>> {
        let inner = self.inner.read().expect("registry lock poisoned");
        inner
            .get(&handle.name)
            .and_then(|v| v.get(handle.version.checked_sub(1)? as usize))
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(handle.to_string()))
    }

    /// Registered names (sorted) with their version counts.
    pub fn names(&self) -> Vec<(String, u64)> {
        let inner = self.inner.read().expect("registry lock poisoned");
        let mut out: Vec<(String, u64)> = inner
            .iter()
            .map(|(k, v)| (k.clone(), v.len() as u64))
            .collect();
        out.sort();
        out
    }
}
