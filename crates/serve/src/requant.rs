//! Background re-quantization: the actuation half of the drift loop.
//!
//! The sensing half (PR 6) seals per-class windows and flags drifted
//! ones against the artifact's calibration baseline. This module closes
//! the loop: a background [`RequantWorker`] consumes a serialized event
//! feed from the observer — one [`RequantEvent::Completed`] per labeled
//! completion, one [`RequantEvent::Sealed`] per sealed window — and
//! drives the state machine
//!
//! ```text
//! Idle ──drift flag──▶ Scoring ──candidate built──▶ Shadow ──▶ Cutover
//!                         │                            │
//!                         └── fault/abort ◀────────────┴──▶ Rejected
//! ```
//!
//! - **Scoring**: a [`CandidateBuilder`] re-runs importance scoring and
//!   bit-arrangement search on the *observed* class mix of the flagged
//!   window, producing a candidate [`ModelArtifact`] whose
//!   `baseline_mix` is the observed mix. The build is checkpointed
//!   through `cbq-resilience`: a kill between build and cutover resumes
//!   from the persisted candidate instead of re-searching.
//! - **Shadow**: for the next `shadow_windows` sealed windows every
//!   labeled completion is scored twice — the incumbent's verdict came
//!   from the serving path, the candidate's from a private unregistered
//!   engine. No served response ever comes from the candidate.
//! - **Cutover/Rejected**: the integer-exact
//!   [`ShadowSet::beats_incumbent_by`] decision either hot-swaps via a
//!   versioned registry load plus a seq-pinned scheduler route at the
//!   next window boundary, or rejects the candidate and keeps the
//!   incumbent untouched.
//!
//! Determinism contract: events are emitted under the observer lock (a
//! single serialized stream), triggers and cutovers key on admission
//! sequence numbers — never on the clock — and shadow counters are
//! integer sums, so the same traffic produces the same decisions, at the
//! same seqs, at any worker count.

use crate::artifact::ModelArtifact;
use crate::error::{Result, ServeError};
use crate::registry::{compile, Backend, Engine, ModelRegistry};
use crate::scheduler::BatchScheduler;
use cbq_resilience::{ByteReader, ByteWriter, CheckpointStore, FaultPlan, LoadOutcome};
use cbq_telemetry::{ShadowSet, Telemetry};
use cbq_tensor::Scratch;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// Schema version of the requant checkpoint payload.
pub(crate) const REQUANT_SCHEMA: u32 = 1;
/// Checkpoint phase name (also the `fail-at:` fault target for the
/// post-checkpoint crash window).
pub(crate) const REQUANT_PHASE: &str = "requant";

/// Knobs of the background re-quantization loop.
#[derive(Debug, Clone)]
pub struct RequantConfig {
    /// Cutover margin: the candidate must beat the incumbent by at least
    /// `margin · labeled` correct answers over the shadow windows
    /// (see [`ShadowSet::beats_incumbent_by`]). `0.0` means "at least as
    /// good".
    pub margin: f64,
    /// Sealed windows the candidate shadows before the decision.
    pub shadow_windows: u64,
    /// Windows after a decision during which new triggers are ignored.
    pub cooldown_windows: u64,
    /// Requantizations the worker may trigger over the server's
    /// lifetime.
    pub max_requants: u64,
    /// Directory for the candidate checkpoint; `None` disables
    /// checkpointing (a mid-requant kill then re-searches on resume).
    pub checkpoint_dir: Option<PathBuf>,
    /// Deterministic fault injection for kill drills (`fail-at:
    /// requant.score` aborts before the build, `fail-at:requant.commit`
    /// right after the checkpoint is written).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for RequantConfig {
    fn default() -> Self {
        RequantConfig {
            margin: 0.0,
            shadow_windows: 2,
            cooldown_windows: 2,
            max_requants: 1,
            checkpoint_dir: None,
            faults: None,
        }
    }
}

impl RequantConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !self.margin.is_finite() || self.margin < 0.0 {
            return Err(ServeError::InvalidConfig(
                "requant margin must be finite and >= 0".into(),
            ));
        }
        if self.shadow_windows == 0 {
            return Err(ServeError::InvalidConfig(
                "shadow_windows must be >= 1".into(),
            ));
        }
        if self.max_requants == 0 {
            return Err(ServeError::InvalidConfig(
                "max_requants must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// Produces a candidate artifact for an observed class mix.
///
/// The serving crate stays independent of the scoring/search crates, so
/// the builder is injected: production glue wires
/// `cbq_core::requant_for_mix` here, tests inject cheap deterministic
/// builders. Implemented for any compatible `FnMut` closure.
pub trait CandidateBuilder: Send {
    /// Builds a candidate artifact from the observed per-class request
    /// counts and the incumbent artifact.
    ///
    /// # Errors
    ///
    /// Any build failure; the worker records an aborted job and the
    /// incumbent keeps serving.
    fn build(&mut self, observed_mix: &[u64], incumbent: &ModelArtifact) -> Result<ModelArtifact>;
}

impl<F> CandidateBuilder for F
where
    F: FnMut(&[u64], &ModelArtifact) -> Result<ModelArtifact> + Send,
{
    fn build(&mut self, observed_mix: &[u64], incumbent: &ModelArtifact) -> Result<ModelArtifact> {
        self(observed_mix, incumbent)
    }
}

/// Everything [`crate::Server::start_adaptive`] needs to run the loop
/// for one model.
pub struct RequantSetup {
    /// Registry name the incumbent serves under (and candidates reload
    /// into).
    pub model: String,
    /// Backend candidates compile to (same as the incumbent's).
    pub backend: Backend,
    /// The incumbent artifact — the builder's starting point.
    pub artifact: ModelArtifact,
    /// Loop knobs.
    pub config: RequantConfig,
    /// The scoring/search glue producing candidates.
    pub builder: Box<dyn CandidateBuilder>,
}

impl std::fmt::Debug for RequantSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequantSetup")
            .field("model", &self.model)
            .field("backend", &self.backend)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// The outcome of one requantization job.
#[derive(Debug, Clone, PartialEq)]
pub enum RequantDecision {
    /// Shadow scoring had not finished when the server drained.
    Pending,
    /// The candidate won: hot-swapped at this admission seq as this
    /// registry version.
    Cutover {
        /// First admission seq served by the new version.
        seq: u64,
        /// Registry version the candidate was loaded as.
        version: u64,
    },
    /// The candidate lost: the incumbent keeps serving.
    Rejected {
        /// Candidate-minus-incumbent correct count over the shadow
        /// windows.
        delta: i64,
    },
    /// A fault or error aborted the job; the incumbent is untouched and
    /// the worker disarms until the server is restarted.
    Aborted {
        /// Phase the abort happened in (`requant.score`,
        /// `requant.commit`, `build`, `compile`, `load`).
        phase: String,
    },
}

/// One requantization job, trigger to decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RequantJob {
    /// Sealed window whose drift flag triggered the job.
    pub trigger_window: u64,
    /// Observed per-class request counts of the trigger window — the mix
    /// the candidate was optimized for.
    pub observed_mix: Vec<u64>,
    /// Whether the candidate was restored from a checkpoint instead of
    /// rebuilt (kill-resume path).
    pub from_checkpoint: bool,
    /// Shadow counters, one [`cbq_telemetry::ShadowWindow`] per scored
    /// window.
    pub shadow: ShadowSet,
    /// How the job ended.
    pub decision: RequantDecision,
}

/// Lifetime record of the requant loop, returned in
/// [`crate::ServeStats::requant`] and rendered into the metrics
/// snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RequantReport {
    /// Jobs in trigger order.
    pub jobs: Vec<RequantJob>,
    /// Drift flags that armed a job.
    pub triggered: u64,
    /// Candidates built (or restored) and shadow-scored.
    pub built: u64,
    /// Jobs that ended in a hot-swap.
    pub cutovers: u64,
    /// Jobs whose candidate lost the shadow comparison.
    pub rejected: u64,
    /// Jobs aborted by faults or errors.
    pub aborted: u64,
    /// Candidates restored from a checkpoint.
    pub checkpoint_hits: u64,
}

/// One event of the observer → requant-worker feed. Emitted under the
/// observer lock, so the stream is a deterministic serialization:
/// every `Completed` of window `w` precedes `Sealed(w)`.
pub(crate) enum RequantEvent {
    /// A labeled request completed successfully.
    Completed {
        /// Window index (`seq / window_size`).
        window: u64,
        /// The request's input sample (for candidate shadow scoring).
        sample: Vec<f32>,
        /// Ground-truth class.
        label: usize,
        /// Whether the incumbent predicted it correctly.
        incumbent_ok: bool,
    },
    /// A window sealed, with its drift verdict and observed mix.
    Sealed {
        /// Window index.
        index: u64,
        /// Whether the drift detector flagged it.
        flagged: bool,
        /// Per-class predicted-traffic counts of the window.
        observed_mix: Vec<u64>,
    },
}

/// Sent/processed event accounting: lets a caller wait until the worker
/// has drained every event emitted so far, making "submit a window, wait
/// tickets, `requant_sync()`" a deterministic drill step.
pub(crate) struct RequantSync {
    state: Mutex<(u64, u64)>, // (sent, done)
    cv: Condvar,
}

impl RequantSync {
    pub(crate) fn new() -> RequantSync {
        RequantSync {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
        }
    }

    fn note_sent(&self) {
        self.state.lock().expect("requant sync poisoned").0 += 1;
    }

    pub(crate) fn note_done(&self) {
        self.state.lock().expect("requant sync poisoned").1 += 1;
        self.cv.notify_all();
    }

    /// Blocks until every event sent so far has been processed.
    pub(crate) fn wait_idle(&self) {
        let mut st = self.state.lock().expect("requant sync poisoned");
        while st.1 < st.0 {
            st = self.cv.wait(st).expect("requant sync poisoned");
        }
    }
}

/// The observer's sending half of the feed.
pub(crate) struct RequantFeed {
    pub(crate) tx: Sender<RequantEvent>,
    pub(crate) sync: Arc<RequantSync>,
}

impl RequantFeed {
    /// Sends one event, keeping the sent/done accounting balanced even
    /// when the worker has already exited.
    pub(crate) fn send(&self, ev: RequantEvent) {
        self.sync.note_sent();
        if self.tx.send(ev).is_err() {
            self.sync.note_done();
        }
    }
}

/// A labeled completion buffered for shadow scoring.
struct ShadowSample {
    sample: Vec<f32>,
    label: usize,
    incumbent_ok: bool,
}

/// The candidate being shadow-scored.
struct ShadowJob {
    trigger_window: u64,
    last_window: u64,
    observed_mix: Vec<u64>,
    from_checkpoint: bool,
    candidate: ModelArtifact,
    engine: Engine,
    input_shape: Vec<usize>,
    scratch: Scratch,
    shadow: ShadowSet,
}

enum Phase {
    Idle,
    Shadow(Box<ShadowJob>),
}

/// The background worker driving the requant state machine.
pub(crate) struct RequantWorker {
    rx: Receiver<RequantEvent>,
    registry: Arc<ModelRegistry>,
    scheduler: Arc<BatchScheduler>,
    telemetry: Telemetry,
    sync: Arc<RequantSync>,
    model: String,
    backend: Backend,
    incumbent: ModelArtifact,
    config: RequantConfig,
    builder: Box<dyn CandidateBuilder>,
    window_size: u64,
    store: Option<CheckpointStore>,
    faults: Arc<FaultPlan>,
    buckets: BTreeMap<u64, Vec<ShadowSample>>,
    phase: Phase,
    disabled: bool,
    cooldown_until: u64,
    report: RequantReport,
}

impl RequantWorker {
    /// Builds a worker (opening the checkpoint store, if configured).
    pub(crate) fn new(
        rx: Receiver<RequantEvent>,
        registry: Arc<ModelRegistry>,
        scheduler: Arc<BatchScheduler>,
        telemetry: Telemetry,
        sync: Arc<RequantSync>,
        setup: RequantSetup,
        window_size: u64,
    ) -> Result<RequantWorker> {
        setup.config.validate()?;
        let store = match &setup.config.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::open(dir, REQUANT_SCHEMA)?),
            None => None,
        };
        let faults = setup
            .config
            .faults
            .clone()
            .unwrap_or_else(|| Arc::new(FaultPlan::none()));
        Ok(RequantWorker {
            rx,
            registry,
            scheduler,
            telemetry,
            sync,
            model: setup.model,
            backend: setup.backend,
            incumbent: setup.artifact,
            config: setup.config,
            builder: setup.builder,
            window_size,
            store,
            faults,
            buckets: BTreeMap::new(),
            phase: Phase::Idle,
            disabled: false,
            cooldown_until: 0,
            report: RequantReport::default(),
        })
    }

    /// Consumes the feed until the observer drops it, then returns the
    /// lifetime report. A job still shadowing at shutdown is recorded
    /// with [`RequantDecision::Pending`].
    pub(crate) fn run(mut self) -> RequantReport {
        while let Ok(ev) = self.rx.recv() {
            self.handle(ev);
            self.sync.note_done();
        }
        if let Phase::Shadow(job) = std::mem::replace(&mut self.phase, Phase::Idle) {
            self.report.jobs.push(RequantJob {
                trigger_window: job.trigger_window,
                observed_mix: job.observed_mix,
                from_checkpoint: job.from_checkpoint,
                shadow: job.shadow,
                decision: RequantDecision::Pending,
            });
        }
        self.report
    }

    /// Whether labeled completions still need buffering: yes while a
    /// shadow is running or another trigger is still possible.
    fn retaining(&self) -> bool {
        !self.disabled
            && (matches!(self.phase, Phase::Shadow(_))
                || self.report.triggered < self.config.max_requants)
    }

    fn handle(&mut self, ev: RequantEvent) {
        match ev {
            RequantEvent::Completed {
                window,
                sample,
                label,
                incumbent_ok,
            } => {
                if self.retaining() {
                    self.buckets.entry(window).or_default().push(ShadowSample {
                        sample,
                        label,
                        incumbent_ok,
                    });
                } else if !self.buckets.is_empty() {
                    self.buckets.clear();
                }
            }
            RequantEvent::Sealed {
                index,
                flagged,
                observed_mix,
            } => self.on_sealed(index, flagged, observed_mix),
        }
    }

    fn on_sealed(&mut self, index: u64, flagged: bool, observed_mix: Vec<u64>) {
        match std::mem::replace(&mut self.phase, Phase::Idle) {
            Phase::Idle => {
                if flagged
                    && !self.disabled
                    && self.report.triggered < self.config.max_requants
                    && index >= self.cooldown_until
                {
                    self.trigger(index, observed_mix);
                }
                // A future trigger's shadow windows all lie past `index`,
                // so buckets at or below it can never be scored again.
                self.buckets = self.buckets.split_off(&(index + 1));
            }
            Phase::Shadow(mut job) => {
                if index > job.trigger_window && index <= job.last_window {
                    let samples = self.buckets.remove(&index).unwrap_or_default();
                    score_window(&mut job, index, &samples);
                    if index == job.last_window {
                        self.decide(*job);
                        return;
                    }
                }
                self.phase = Phase::Shadow(job);
            }
        }
    }

    fn trigger(&mut self, index: u64, observed_mix: Vec<u64>) {
        self.report.triggered += 1;
        self.telemetry.counter_add("serve.requant.triggered", 1);
        self.telemetry.gauge("serve.requant.trigger_window", index as f64);

        // Resume path: a persisted candidate for the *same* trigger
        // window and mix skips the (expensive) rebuild entirely.
        let mut restored: Option<ModelArtifact> = None;
        if let Some(store) = &self.store {
            if let LoadOutcome::Loaded(payload) = store.load(REQUANT_PHASE) {
                if let Ok((w, mix, art)) = decode_checkpoint(&payload) {
                    if w == index && mix == observed_mix {
                        restored = Some(art);
                    }
                }
            }
        }
        let (candidate, from_checkpoint) = match restored {
            Some(art) => {
                self.report.checkpoint_hits += 1;
                self.telemetry.counter_add("serve.requant.checkpoint_hits", 1);
                (art, true)
            }
            None => {
                // `fail-at:requant.score` models a crash before any
                // candidate exists: nothing persisted, nothing swapped.
                if self.faults.check_phase("requant.score").is_err() {
                    return self.abort(index, observed_mix, false, "requant.score");
                }
                let mut art = match self.builder.build(&observed_mix, &self.incumbent) {
                    Ok(a) => a,
                    Err(_) => return self.abort(index, observed_mix, false, "build"),
                };
                // The candidate's drift baseline is the mix it was
                // optimized for — a reload must carry the *new* mix, not
                // the authoring-time histogram.
                art.baseline_mix = Some(observed_mix.iter().map(|&c| c as f64).collect());
                if let Some(store) = &self.store {
                    let _ = store.save(REQUANT_PHASE, encode_checkpoint(index, &observed_mix, &art));
                }
                // `fail-at:requant.commit` models a crash right after the
                // checkpoint landed — exactly what resume recovers from.
                if self.faults.check_phase("requant.commit").is_err() {
                    return self.abort(index, observed_mix, false, "requant.commit");
                }
                (art, false)
            }
        };
        let (engine, _classes) = match compile(&candidate, self.backend) {
            Ok(v) => v,
            Err(_) => return self.abort(index, observed_mix, from_checkpoint, "compile"),
        };
        self.report.built += 1;
        self.telemetry.counter_add("serve.requant.built", 1);
        let input_shape = self.incumbent.input_shape.clone();
        self.phase = Phase::Shadow(Box::new(ShadowJob {
            trigger_window: index,
            last_window: index + self.config.shadow_windows,
            observed_mix,
            from_checkpoint,
            candidate,
            engine,
            input_shape,
            scratch: Scratch::new(),
            shadow: ShadowSet::new(),
        }));
    }

    fn decide(&mut self, job: ShadowJob) {
        let delta = job.shadow.delta();
        self.telemetry
            .gauge("serve.requant.shadow_delta", delta as f64);
        let decision = if job.shadow.beats_incumbent_by(self.config.margin) {
            match self
                .registry
                .load(&self.model, &job.candidate, self.backend)
            {
                Ok(handle) => {
                    let seq = self
                        .scheduler
                        .install_route_at_boundary(&handle, self.window_size);
                    self.report.cutovers += 1;
                    self.telemetry.counter_add("serve.requant.cutover", 1);
                    self.telemetry
                        .gauge("serve.requant.active_version", handle.version() as f64);
                    self.incumbent = job.candidate.clone();
                    RequantDecision::Cutover {
                        seq,
                        version: handle.version(),
                    }
                }
                Err(_) => {
                    return self.abort(job.trigger_window, job.observed_mix, job.from_checkpoint, "load")
                }
            }
        } else {
            self.report.rejected += 1;
            self.telemetry.counter_add("serve.requant.rejected", 1);
            RequantDecision::Rejected { delta }
        };
        self.cooldown_until = job.last_window + 1 + self.config.cooldown_windows;
        self.report.jobs.push(RequantJob {
            trigger_window: job.trigger_window,
            observed_mix: job.observed_mix,
            from_checkpoint: job.from_checkpoint,
            shadow: job.shadow,
            decision,
        });
        self.phase = Phase::Idle;
    }

    /// Records an aborted job and disarms the worker: a deterministic
    /// drill must not see a *different* requant fire later in the run
    /// (the operator restarts the server to resume — the checkpoint, if
    /// one landed, then completes the same cutover).
    fn abort(&mut self, trigger_window: u64, observed_mix: Vec<u64>, from_checkpoint: bool, phase: &str) {
        self.report.aborted += 1;
        self.telemetry.counter_add("serve.requant.aborted", 1);
        self.report.jobs.push(RequantJob {
            trigger_window,
            observed_mix,
            from_checkpoint,
            shadow: ShadowSet::new(),
            decision: RequantDecision::Aborted {
                phase: phase.to_string(),
            },
        });
        self.disabled = true;
        self.buckets.clear();
        self.phase = Phase::Idle;
    }
}

/// Scores one sealed window's buffered completions against the
/// candidate. Per-sample inference is stateless and the counters are
/// integer sums, so the arrival order of the samples — the one
/// scheduling-dependent input — cannot change the outcome.
fn score_window(job: &mut ShadowJob, index: u64, samples: &[ShadowSample]) {
    for s in samples {
        let candidate_ok = match job.engine.infer(&s.sample, &job.input_shape, &mut job.scratch) {
            Ok(logits) => {
                let ls = logits.as_slice();
                let mut best = 0;
                for (i, &v) in ls.iter().enumerate() {
                    if v > ls[best] {
                        best = i;
                    }
                }
                job.scratch.recycle_f32(logits.into_vec());
                best == s.label
            }
            Err(_) => false,
        };
        job.shadow.record(index, s.incumbent_ok, candidate_ok);
    }
}

fn encode_checkpoint(window: u64, mix: &[u64], artifact: &ModelArtifact) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(window);
    w.put_usize(mix.len());
    for &c in mix {
        w.put_u64(c);
    }
    w.put_bytes(&artifact.to_bytes());
    w.into_bytes()
}

fn decode_checkpoint(bytes: &[u8]) -> Result<(u64, Vec<u64>, ModelArtifact)> {
    let mut r = ByteReader::new(bytes);
    let window = r.get_u64()?;
    let n = r.get_usize()?;
    let mut mix = Vec::with_capacity(n);
    for _ in 0..n {
        mix.push(r.get_u64()?);
    }
    let artifact = ModelArtifact::from_bytes(&r.get_bytes()?)?;
    Ok((window, mix, artifact))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_names_the_field() {
        assert!(RequantConfig::default().validate().is_ok());
        let mut c = RequantConfig::default();
        c.margin = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = RequantConfig::default();
        c.shadow_windows = 0;
        assert!(c.validate().is_err());
        let mut c = RequantConfig::default();
        c.max_requants = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sync_waits_for_processing() {
        let sync = Arc::new(RequantSync::new());
        sync.note_sent();
        let done = {
            let sync = sync.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                sync.note_done();
            })
        };
        sync.wait_idle();
        done.join().unwrap();
        // Balanced again: an immediate wait returns.
        sync.wait_idle();
    }

    #[test]
    fn checkpoint_round_trips_window_mix_and_artifact() {
        let arch = crate::ArchSpec::Mlp(vec![4, 6, 3]);
        let mut net = arch.build().unwrap();
        let artifact = ModelArtifact {
            arch,
            input_shape: vec![4],
            state: cbq_nn::state_dict(&mut net),
            quant: None,
            baseline_mix: Some(vec![5.0, 2.0, 1.0]),
            packed: None,
        };
        let bytes = encode_checkpoint(7, &[50, 20, 10], &artifact);
        let (w, mix, art) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(w, 7);
        assert_eq!(mix, vec![50, 20, 10]);
        assert_eq!(art.baseline_mix, Some(vec![5.0, 2.0, 1.0]));
        assert_eq!(art.input_shape, vec![4]);
        assert!(decode_checkpoint(&bytes[..10]).is_err());
    }
}
