use std::error::Error;
use std::fmt;

/// Error produced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded admission queue is full — the request was rejected
    /// rather than buffered without bound. Clients should back off and
    /// retry; nothing was partially executed.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The server is draining: no new requests are admitted, in-flight
    /// requests still complete.
    ShuttingDown,
    /// The targeted replica is down (killed or restarting). Clients
    /// should fail over to another replica; nothing was admitted.
    ReplicaDown {
        /// Name of the unreachable replica.
        replica: String,
    },
    /// The request referenced a model/version the registry does not hold.
    UnknownModel(String),
    /// The request payload does not match the model's input contract.
    BadRequest(String),
    /// A server or scheduler configuration value is invalid.
    InvalidConfig(String),
    /// A checkpoint artifact failed to decode or rebuild.
    Artifact(String),
    /// An underlying network error surfaced during execution.
    Nn(String),
    /// An underlying quantization error surfaced during execution.
    Quant(String),
}

impl ServeError {
    /// Whether retrying the exact same request (against the same or
    /// another replica) can succeed.
    ///
    /// Retryable errors are *admission* outcomes — the request was never
    /// executed, so resubmitting cannot duplicate work: the queue was
    /// full ([`ServeError::Overloaded`]), the server was draining
    /// ([`ServeError::ShuttingDown`]), or the replica was down
    /// ([`ServeError::ReplicaDown`]). Everything else is terminal: the
    /// request itself is invalid or execution failed deterministically,
    /// so a retry would fail the same way.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::ShuttingDown
                | ServeError::ReplicaDown { .. }
        )
    }

    /// Whether the error is terminal — the negation of
    /// [`ServeError::is_retryable`], named for call-site readability.
    pub fn is_terminal(&self) -> bool {
        !self.is_retryable()
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "admission queue full (capacity {capacity}): request rejected"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is draining: request rejected"),
            ServeError::ReplicaDown { replica } => {
                write!(f, "replica {replica} is down: request not admitted")
            }
            ServeError::UnknownModel(name) => write!(f, "unknown model: {name}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Artifact(msg) => write!(f, "model artifact error: {msg}"),
            ServeError::Nn(msg) => write!(f, "network error: {msg}"),
            ServeError::Quant(msg) => write!(f, "quantization error: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<cbq_tensor::TensorError> for ServeError {
    fn from(e: cbq_tensor::TensorError) -> Self {
        ServeError::Nn(e.to_string())
    }
}

impl From<cbq_nn::NnError> for ServeError {
    fn from(e: cbq_nn::NnError) -> Self {
        ServeError::Nn(e.to_string())
    }
}

impl From<cbq_quant::QuantError> for ServeError {
    fn from(e: cbq_quant::QuantError) -> Self {
        ServeError::Quant(e.to_string())
    }
}

impl From<cbq_resilience::ResilienceError> for ServeError {
    fn from(e: cbq_resilience::ResilienceError) -> Self {
        ServeError::Artifact(e.to_string())
    }
}

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_name_the_problem() {
        assert!(ServeError::Overloaded { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(ServeError::ShuttingDown.to_string().contains("draining"));
        assert!(ServeError::UnknownModel("m".into())
            .to_string()
            .contains('m'));
        assert!(ServeError::ReplicaDown {
            replica: "replica-3".into()
        }
        .to_string()
        .contains("replica-3"));
    }

    #[test]
    fn admission_errors_are_retryable_execution_errors_terminal() {
        let retryable = [
            ServeError::Overloaded { capacity: 4 },
            ServeError::ShuttingDown,
            ServeError::ReplicaDown {
                replica: "r".into(),
            },
        ];
        for e in retryable {
            assert!(e.is_retryable(), "{e} should be retryable");
            assert!(!e.is_terminal());
        }
        let terminal = [
            ServeError::UnknownModel("m".into()),
            ServeError::BadRequest("len".into()),
            ServeError::InvalidConfig("cfg".into()),
            ServeError::Artifact("decode".into()),
            ServeError::Nn("shape".into()),
            ServeError::Quant("bits".into()),
        ];
        for e in terminal {
            assert!(e.is_terminal(), "{e} should be terminal");
            assert!(!e.is_retryable());
        }
    }
}
