use std::error::Error;
use std::fmt;

/// Error produced by the serving runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded admission queue is full — the request was rejected
    /// rather than buffered without bound. Clients should back off and
    /// retry; nothing was partially executed.
    Overloaded {
        /// The queue capacity that was exceeded.
        capacity: usize,
    },
    /// The server is draining: no new requests are admitted, in-flight
    /// requests still complete.
    ShuttingDown,
    /// The request referenced a model/version the registry does not hold.
    UnknownModel(String),
    /// The request payload does not match the model's input contract.
    BadRequest(String),
    /// A server or scheduler configuration value is invalid.
    InvalidConfig(String),
    /// A checkpoint artifact failed to decode or rebuild.
    Artifact(String),
    /// An underlying network error surfaced during execution.
    Nn(String),
    /// An underlying quantization error surfaced during execution.
    Quant(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "admission queue full (capacity {capacity}): request rejected"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is draining: request rejected"),
            ServeError::UnknownModel(name) => write!(f, "unknown model: {name}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Artifact(msg) => write!(f, "model artifact error: {msg}"),
            ServeError::Nn(msg) => write!(f, "network error: {msg}"),
            ServeError::Quant(msg) => write!(f, "quantization error: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<cbq_tensor::TensorError> for ServeError {
    fn from(e: cbq_tensor::TensorError) -> Self {
        ServeError::Nn(e.to_string())
    }
}

impl From<cbq_nn::NnError> for ServeError {
    fn from(e: cbq_nn::NnError) -> Self {
        ServeError::Nn(e.to_string())
    }
}

impl From<cbq_quant::QuantError> for ServeError {
    fn from(e: cbq_quant::QuantError) -> Self {
        ServeError::Quant(e.to_string())
    }
}

impl From<cbq_resilience::ResilienceError> for ServeError {
    fn from(e: cbq_resilience::ResilienceError) -> Self {
        ServeError::Artifact(e.to_string())
    }
}

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_name_the_problem() {
        assert!(ServeError::Overloaded { capacity: 8 }
            .to_string()
            .contains('8'));
        assert!(ServeError::ShuttingDown.to_string().contains("draining"));
        assert!(ServeError::UnknownModel("m".into())
            .to_string()
            .contains('m'));
    }
}
