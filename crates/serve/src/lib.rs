#![warn(missing_docs)]

//! # cbq-serve — dynamic micro-batching inference for quantized models
//!
//! The deployment side of the CQ pipeline: load a trained/quantized
//! checkpoint ([`ModelArtifact`]) into one of four backends, coalesce
//! single-sample requests into micro-batches, and answer each request
//! with logits that are **bit-identical to offline single-sample
//! evaluation** — regardless of batching, interleaving, or worker count.
//!
//! Pieces:
//!
//! - [`ModelRegistry`] — versioned model store. [`Backend::Float`] serves
//!   raw weights, [`Backend::FakeQuant`] the value-domain quantized
//!   network, [`Backend::Integer`] the code-domain
//!   [`IntegerNet`](cbq_quant::IntegerNet) lowering, and
//!   [`Backend::PackedInteger`] the bitplane/nibble-packed
//!   [`PackedIntegerNet`](cbq_quant::PackedIntegerNet) lowering —
//!   bit-identical to `Integer` while storing 1–4-bit weight rows at
//!   their natural density. V3 artifacts may embed the CRC-guarded
//!   packed-code section ([`ModelArtifact::packed`],
//!   [`compile_packed_codes`]); the packed backend verifies it against a
//!   fresh recompile at load time and refuses mismatched artifacts.
//! - [`BatchScheduler`] — bounded admission queue with a
//!   `max_batch`/`max_wait` coalescing policy ([`BatchPolicy`]). Full
//!   queue ⇒ typed [`ServeError::Overloaded`] rejection, never unbounded
//!   buffering. The `max_wait` clock is injectable ([`ServeClock`]):
//!   production uses [`SystemClock`], tests drive a [`ManualClock`].
//! - [`Server`] — worker pool where each worker owns persistent
//!   `(engine, Scratch)` slots, pre-warmed so steady-state requests do
//!   zero heap allocations on the forward path. Graceful
//!   [`Server::shutdown`] drains the queue, completes in-flight
//!   requests, and returns [`ServeStats`] (latency histogram, admission
//!   counters, pool-miss accounting).
//!
//! Telemetry: queue-depth gauges on admission, batch/completion/rejection
//! counters on the hot path, latency quantile gauges at drain — all
//! through [`cbq_telemetry::Telemetry`].
//!
//! Observability ([`Server::start_observed`] + [`ObserveConfig`]): every
//! admitted request gets a dense sequence number and a [`RequestTrace`]
//! with per-stage timings (queue wait, batch-coalescing wait, compute) on
//! the injected clock; completions feed fixed-size per-class windows
//! whose observed mix is checked against the artifact's calibration
//! baseline ([`ModelArtifact::baseline_mix`]) by a drift detector
//! (`serve.drift.*` gauges, [`DriftReport`]s in [`ServeStats`]). Traces,
//! metrics snapshots, and drift verdicts are deterministic — byte-
//! identical at any worker count under a manual clock. A rng-free
//! [`TrafficGenerator`] produces labeled traffic with an exact,
//! shiftable class mix for drift drills.
//!
//! Adaptive serving ([`Server::start_adaptive`] + [`RequantSetup`]):
//! the actuation half of the drift loop. When the detector flags a
//! sealed window, a background worker rebuilds the quantization for the
//! *observed* class mix through an injected [`CandidateBuilder`],
//! shadow-scores the candidate on labeled traffic (never serving from
//! it), and hot-swaps via a versioned registry reload plus a seq-pinned
//! scheduler route at a window boundary — only when the candidate beats
//! the incumbent by the configured margin ([`RequantConfig`]). The whole
//! loop keys on admission seqs, never the clock, and reports itself as a
//! [`RequantReport`] in [`ServeStats`] and the metrics snapshot.
//!
//! # Example
//!
//! ```
//! use cbq_serve::{ArchSpec, Backend, BatchPolicy, ModelArtifact, ModelRegistry,
//!                 Server, ServerConfig};
//! use cbq_telemetry::Telemetry;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), cbq_serve::ServeError> {
//! let arch = ArchSpec::Mlp(vec![4, 8, 3]);
//! let mut net = arch.build()?;
//! let artifact = ModelArtifact {
//!     arch,
//!     input_shape: vec![4],
//!     state: cbq_nn::state_dict(&mut net),
//!     quant: None,
//!     baseline_mix: None,
//!     packed: None,
//! };
//! let registry = Arc::new(ModelRegistry::new());
//! let handle = registry.load("demo", &artifact, Backend::Float)?;
//! let server = Server::start(
//!     registry,
//!     ServerConfig { policy: BatchPolicy::default(), workers: 2 },
//!     Telemetry::disabled(),
//! )?;
//! let response = server.infer(&handle, vec![0.1, -0.2, 0.3, 0.4])?;
//! assert_eq!(response.logits.len(), 3);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

mod artifact;
mod clock;
mod error;
mod observe;
mod registry;
mod requant;
mod scheduler;
mod server;
mod traffic;

pub use artifact::{ArchSpec, ModelArtifact, QuantState};
pub use cbq_telemetry::{ClassWindow, DriftConfig, DriftDetector, DriftReport, LatencySummary};
pub use clock::{ManualClock, ServeClock, SystemClock};
pub use error::{Result, ServeError};
pub use observe::{ObserveConfig, RequestTrace, METRICS_SCHEMA};
pub use registry::{
    compile_packed_codes, offline_logits, Backend, LoadedModel, ModelHandle, ModelRegistry,
};
pub use requant::{
    CandidateBuilder, RequantConfig, RequantDecision, RequantJob, RequantReport, RequantSetup,
};
pub use scheduler::{BatchPolicy, BatchScheduler};
pub use server::{InferResponse, ServeStats, Server, ServerConfig, Ticket};
pub use traffic::{achieved_mix, apportion, TrafficGenerator};

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_telemetry::Telemetry;
    use std::sync::Arc;
    use std::time::Duration;

    fn float_artifact(sizes: &[usize]) -> ModelArtifact {
        let arch = ArchSpec::Mlp(sizes.to_vec());
        let mut net = arch.build().unwrap();
        ModelArtifact {
            arch,
            input_shape: vec![sizes[0]],
            state: cbq_nn::state_dict(&mut net),
            quant: None,
            baseline_mix: None,
            packed: None,
        }
    }

    #[test]
    fn serves_and_matches_offline_reference() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &float_artifact(&[5, 7, 3]), Backend::Float)
            .unwrap();
        let model = registry.get(&handle).unwrap();
        let server = Server::start(
            registry.clone(),
            ServerConfig {
                policy: BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_micros(50),
                    queue_capacity: 64,
                },
                workers: 2,
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let sample: Vec<f32> = (0..5).map(|i| (i as f32) * 0.3 - 0.7).collect();
        let resp = server.infer(&handle, sample.clone()).unwrap();
        let offline = offline_logits(&model, &sample).unwrap();
        assert_eq!(resp.logits.len(), 3);
        for (a, b) in resp.logits.iter().zip(&offline) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.steady_pool_misses, 0);
    }

    #[test]
    fn wrong_sample_length_is_a_bad_request() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &float_artifact(&[5, 4, 2]), Backend::Float)
            .unwrap();
        let server =
            Server::start(registry, ServerConfig::default(), Telemetry::disabled()).unwrap();
        assert!(matches!(
            server.submit(&handle, vec![1.0; 3]),
            Err(ServeError::BadRequest(_))
        ));
        server.shutdown();
    }

    #[test]
    fn versioned_handles_survive_reload() {
        let registry = Arc::new(ModelRegistry::new());
        let art = float_artifact(&[4, 6, 2]);
        let v1 = registry.load("m", &art, Backend::Float).unwrap();
        let v2 = registry.load("m", &art, Backend::Float).unwrap();
        assert_eq!(v1.version(), 1);
        assert_eq!(v2.version(), 2);
        assert_eq!(registry.latest("m").unwrap(), v2);
        assert!(registry.get(&v1).is_ok());
        assert_eq!(registry.names(), vec![("m".to_string(), 2)]);
    }

    #[test]
    fn reload_adopts_the_new_artifacts_baseline_mix() {
        // Regression for the requant cutover path: the candidate artifact
        // carries the *observed* mix as its baseline, and the registry
        // version minted at cutover must expose that mix — not the stale
        // authoring-time baseline of the incumbent version.
        let registry = Arc::new(ModelRegistry::new());
        let mut art = float_artifact(&[4, 6, 2]);
        art.baseline_mix = Some(vec![0.5, 0.5]);
        let v1 = registry.load("m", &art, Backend::Float).unwrap();
        art.baseline_mix = Some(vec![0.9, 0.1]);
        let v2 = registry.load("m", &art, Backend::Float).unwrap();
        assert_eq!(
            registry.get(&v1).unwrap().baseline_mix(),
            Some(&[0.5, 0.5][..]),
            "old version keeps its own baseline"
        );
        assert_eq!(
            registry.get(&v2).unwrap().baseline_mix(),
            Some(&[0.9, 0.1][..]),
            "reload must adopt the new baseline"
        );
        assert_eq!(registry.latest("m").unwrap(), v2);
    }

    #[test]
    fn manual_clock_holds_partial_batches_until_advanced() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &float_artifact(&[3, 5, 2]), Backend::Float)
            .unwrap();
        let clock = ManualClock::new();
        let server = Server::start_with(
            registry,
            ServerConfig {
                policy: BatchPolicy {
                    max_batch: 8,
                    max_wait: Duration::from_millis(10),
                    queue_capacity: 16,
                },
                workers: 1,
            },
            Arc::new(clock.clone()),
            Telemetry::disabled(),
        )
        .unwrap();
        let ticket = server.submit(&handle, vec![0.5, -0.5, 0.25]).unwrap();
        // Logical time is frozen: the partial batch must not dispatch.
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            ticket.try_wait().is_none(),
            "dispatched before max_wait elapsed"
        );
        clock.advance(Duration::from_millis(10));
        let resp = ticket.wait().unwrap();
        assert_eq!(resp.batch_size, 1);
        server.shutdown();
    }

    #[test]
    fn wait_timeout_elapses_on_the_logical_clock_not_wall_time() {
        let registry = Arc::new(ModelRegistry::new());
        let handle = registry
            .load("m", &float_artifact(&[3, 5, 2]), Backend::Float)
            .unwrap();
        let clock = ManualClock::new();
        let server = Server::start_with(
            registry,
            ServerConfig {
                policy: BatchPolicy {
                    max_batch: 8,
                    max_wait: Duration::from_millis(10),
                    queue_capacity: 16,
                },
                workers: 1,
            },
            Arc::new(clock.clone()),
            Telemetry::disabled(),
        )
        .unwrap();
        let ticket = server.submit(&handle, vec![0.5, -0.5, 0.25]).unwrap();
        // The clock is frozen, so a 5 ms logical timeout must not elapse
        // while real time passes: it only returns once a helper thread
        // advances logical time past the deadline.
        let advancer = {
            let clock = clock.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                clock.advance(Duration::from_millis(5));
            })
        };
        let start = std::time::Instant::now();
        let timed_out = ticket.wait_timeout(Duration::from_millis(5));
        assert!(timed_out.is_none(), "request cannot finish before max_wait");
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "wait_timeout returned on wall time, not the frozen clock"
        );
        advancer.join().unwrap();
        // The ticket stays redeemable after a timeout: release the batch
        // and the same ticket yields the response.
        clock.advance(Duration::from_millis(10));
        let resp = ticket
            .wait_timeout(Duration::from_secs(1))
            .expect("batch dispatched after max_wait elapsed")
            .unwrap();
        assert_eq!(resp.batch_size, 1);
        server.shutdown();
    }

    #[test]
    fn integer_backends_require_quant_state() {
        let registry = ModelRegistry::new();
        for backend in [Backend::Integer, Backend::PackedInteger] {
            let err = registry
                .load("m", &float_artifact(&[4, 4, 2]), backend)
                .unwrap_err();
            assert!(matches!(err, ServeError::Artifact(_)), "{backend:?}");
        }
    }
}
