//! Serializable model checkpoints for the serving runtime.
//!
//! A [`ModelArtifact`] is everything the registry needs to rebuild a
//! trained (and optionally quantized) network in any backend: the
//! architecture spec, the full [`StateDict`], and — when the model went
//! through the CQ pipeline — the searched [`BitArrangement`] plus the
//! calibrated activation-quantizer state.
//!
//! The byte format reuses the checkpoint codec from `cbq-resilience`:
//! floats are stored as raw IEEE-754 bits so a decode → rebuild → serve
//! round trip is bit-exact, and encoding is deterministic (`BTreeMap`
//! iteration inside [`StateDict::to_bytes`], fixed field order here).

use crate::error::{Result, ServeError};
use cbq_nn::{models, Sequential, StateDict};
use cbq_quant::{BitArrangement, BitWidth, PackedModelCodes, UnitArrangement};
use cbq_resilience::{atomic_write, ByteReader, ByteWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

/// Current artifact magic. V3 appends the optional CRC-guarded packed
/// weight-code section after the drift baseline.
const MAGIC_V3: &[u8] = b"CBQSRV3\n";
/// Pre-packing magic, still decodable: a V2 artifact simply has no
/// packed-code section.
const MAGIC_V2: &[u8] = b"CBQSRV2\n";
/// Pre-observability magic, still decodable: a V1 artifact has neither a
/// baseline mix nor a packed-code section.
const MAGIC_V1: &[u8] = b"CBQSRV1\n";

/// Architecture of a servable model — enough to rebuild the [`Sequential`]
/// whose parameters the state dict then overwrites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchSpec {
    /// Multi-layer perceptron: layer sizes including input and output.
    Mlp(Vec<usize>),
    /// VGG-small from the model zoo.
    VggSmall {
        /// Input channels.
        in_channels: usize,
        /// Input height.
        height: usize,
        /// Input width.
        width: usize,
        /// Base conv width.
        base_width: usize,
        /// FC hidden width.
        fc_dim: usize,
        /// Output classes.
        num_classes: usize,
    },
    /// ResNet-20 from the model zoo.
    ResNet20 {
        /// Input channels.
        in_channels: usize,
        /// First-stage width before expansion.
        base_width: usize,
        /// Paper expand factor (x1/x5).
        expand: usize,
        /// Residual blocks per stage.
        blocks_per_stage: usize,
        /// Output classes.
        num_classes: usize,
    },
}

impl ArchSpec {
    /// Rebuilds the architecture. Initial weights are placeholders — the
    /// caller immediately overwrites them from the state dict, so the
    /// fixed seed only has to be deterministic, not meaningful.
    pub fn build(&self) -> Result<Sequential> {
        self.build_init(&mut StdRng::seed_from_u64(0))
    }

    /// Rebuilds the architecture with caller-controlled initial weights —
    /// for callers that train the network from scratch (e.g. the
    /// `cbq serve` demo) rather than overwrite it from a state dict.
    ///
    /// # Errors
    ///
    /// Propagates model-zoo construction errors.
    pub fn build_init(&self, rng: &mut StdRng) -> Result<Sequential> {
        let net = match self {
            ArchSpec::Mlp(sizes) => models::mlp(sizes, rng)?,
            ArchSpec::VggSmall {
                in_channels,
                height,
                width,
                base_width,
                fc_dim,
                num_classes,
            } => {
                let cfg = models::VggConfig {
                    in_channels: *in_channels,
                    height: *height,
                    width: *width,
                    base_width: *base_width,
                    fc_dim: *fc_dim,
                    num_classes: *num_classes,
                };
                models::vgg_small(&cfg, rng)?
            }
            ArchSpec::ResNet20 {
                in_channels,
                base_width,
                expand,
                blocks_per_stage,
                num_classes,
            } => {
                let cfg = models::ResNetConfig {
                    in_channels: *in_channels,
                    base_width: *base_width,
                    expand: *expand,
                    blocks_per_stage: *blocks_per_stage,
                    num_classes: *num_classes,
                };
                models::resnet20(&cfg, rng)?
            }
        };
        Ok(net)
    }

    fn encode(&self, w: &mut ByteWriter) {
        match self {
            ArchSpec::Mlp(sizes) => {
                w.put_u8(0);
                w.put_usize_slice(sizes);
            }
            ArchSpec::VggSmall {
                in_channels,
                height,
                width,
                base_width,
                fc_dim,
                num_classes,
            } => {
                w.put_u8(1);
                w.put_usize_slice(&[
                    *in_channels,
                    *height,
                    *width,
                    *base_width,
                    *fc_dim,
                    *num_classes,
                ]);
            }
            ArchSpec::ResNet20 {
                in_channels,
                base_width,
                expand,
                blocks_per_stage,
                num_classes,
            } => {
                w.put_u8(2);
                w.put_usize_slice(&[
                    *in_channels,
                    *base_width,
                    *expand,
                    *blocks_per_stage,
                    *num_classes,
                ]);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<ArchSpec> {
        let tag = r.get_u8()?;
        let fields = r.get_usize_vec()?;
        let need = |n: usize| -> Result<()> {
            if fields.len() == n {
                Ok(())
            } else {
                Err(ServeError::Artifact(format!(
                    "arch spec expects {n} fields, found {}",
                    fields.len()
                )))
            }
        };
        match tag {
            0 => Ok(ArchSpec::Mlp(fields)),
            1 => {
                need(6)?;
                Ok(ArchSpec::VggSmall {
                    in_channels: fields[0],
                    height: fields[1],
                    width: fields[2],
                    base_width: fields[3],
                    fc_dim: fields[4],
                    num_classes: fields[5],
                })
            }
            2 => {
                need(5)?;
                Ok(ArchSpec::ResNet20 {
                    in_channels: fields[0],
                    base_width: fields[1],
                    expand: fields[2],
                    blocks_per_stage: fields[3],
                    num_classes: fields[4],
                })
            }
            other => Err(ServeError::Artifact(format!("unknown arch tag {other}"))),
        }
    }
}

/// Quantization state captured after the CQ pipeline: the searched bit
/// arrangement plus calibrated activation-quantizer clips and width.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantState {
    /// Per-filter bit-widths for every quantizable layer.
    pub arrangement: BitArrangement,
    /// Activation quantizer width (uniform across layers, paper §III).
    pub act_bits: u8,
    /// Calibrated clip bound per activation-quantized layer name.
    pub act_clips: Vec<(String, f32)>,
}

/// A self-contained, bit-exact snapshot of a servable model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Architecture to rebuild.
    pub arch: ArchSpec,
    /// Per-sample input dims, e.g. `[3, 12, 12]` or `[features]`.
    pub input_shape: Vec<usize>,
    /// Trained parameters and running statistics.
    pub state: StateDict,
    /// Quantization state; `None` for float-only checkpoints.
    pub quant: Option<QuantState>,
    /// Class mix the deployment was calibrated against (one nonnegative
    /// finite weight per class, any scale) — the drift-detection baseline
    /// the serve observability layer compares live traffic to. `None`
    /// when no calibration mix was recorded (drift detection is then
    /// disabled unless the operator supplies one).
    pub baseline_mix: Option<Vec<f64>>,
    /// Pre-packed integer weight codes (V3), CRC-64-guarded. Optional and
    /// purely an integrity artifact: quantization is deterministic, so the
    /// packed backend always recompiles from the state dict and *verifies*
    /// against this section — a mismatch means the artifact's sections
    /// belong to different models and the load is refused.
    pub packed: Option<PackedModelCodes>,
}

impl ModelArtifact {
    /// Features per sample (product of `input_shape`).
    pub fn input_len(&self) -> usize {
        self.input_shape.iter().product()
    }

    /// Encodes deterministically; floats survive bit-for-bit.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_bytes(MAGIC_V3);
        self.arch.encode(&mut w);
        w.put_usize_slice(&self.input_shape);
        w.put_bytes(&self.state.to_bytes());
        match &self.quant {
            None => w.put_bool(false),
            Some(q) => {
                w.put_bool(true);
                w.put_u8(q.act_bits);
                w.put_usize(q.act_clips.len());
                for (name, clip) in &q.act_clips {
                    w.put_str(name);
                    w.put_f32(*clip);
                }
                w.put_usize(q.arrangement.units().len());
                for unit in q.arrangement.units() {
                    w.put_str(&unit.name);
                    w.put_bytes(&unit.bits.iter().map(|b| b.bits()).collect::<Vec<u8>>());
                    w.put_usize(unit.weights_per_filter);
                }
            }
        }
        match &self.baseline_mix {
            None => w.put_bool(false),
            Some(mix) => {
                w.put_bool(true);
                w.put_f64_slice(mix);
            }
        }
        match &self.packed {
            None => w.put_bool(false),
            Some(codes) => {
                w.put_bool(true);
                w.put_bytes(&codes.to_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes an artifact, validating fully before returning.
    ///
    /// # Errors
    ///
    /// [`ServeError::Artifact`] on any truncation, bad magic, or invalid
    /// field.
    pub fn from_bytes(bytes: &[u8]) -> Result<ModelArtifact> {
        let mut r = ByteReader::new(bytes);
        let magic = r.get_bytes()?;
        let version = match &magic {
            m if m == MAGIC_V1 => 1u8,
            m if m == MAGIC_V2 => 2,
            m if m == MAGIC_V3 => 3,
            _ => return Err(ServeError::Artifact("bad artifact magic".into())),
        };
        let arch = ArchSpec::decode(&mut r)?;
        let input_shape = r.get_usize_vec()?;
        if input_shape.is_empty() || input_shape.iter().product::<usize>() == 0 {
            return Err(ServeError::Artifact("empty input shape".into()));
        }
        let state_bytes = r.get_bytes()?;
        let state = StateDict::from_bytes(&state_bytes)
            .map_err(|e| ServeError::Artifact(format!("state dict: {e}")))?;
        let quant = if r.get_bool()? {
            let act_bits = r.get_u8()?;
            let clip_count = r.get_usize()?;
            let mut act_clips = Vec::with_capacity(clip_count);
            for _ in 0..clip_count {
                let name = r.get_string()?;
                let clip = r.get_f32()?;
                act_clips.push((name, clip));
            }
            let unit_count = r.get_usize()?;
            let mut arrangement = BitArrangement::new();
            for _ in 0..unit_count {
                let name = r.get_string()?;
                let raw_bits = r.get_bytes()?;
                let mut bits = Vec::with_capacity(raw_bits.len());
                for b in raw_bits {
                    bits.push(
                        BitWidth::new(b)
                            .map_err(|e| ServeError::Artifact(format!("unit {name}: {e}")))?,
                    );
                }
                let weights_per_filter = r.get_usize()?;
                arrangement.push(UnitArrangement {
                    name,
                    bits,
                    weights_per_filter,
                });
            }
            Some(QuantState {
                arrangement,
                act_bits,
                act_clips,
            })
        } else {
            None
        };
        let baseline_mix = if version < 2 {
            None
        } else if r.get_bool()? {
            let mix = r.get_f64_vec()?;
            if mix.is_empty() {
                return Err(ServeError::Artifact("empty baseline mix".into()));
            }
            if mix.iter().any(|&p| !p.is_finite() || p < 0.0) {
                return Err(ServeError::Artifact(
                    "baseline mix weights must be finite and nonnegative".into(),
                ));
            }
            if mix.iter().sum::<f64>() <= 0.0 {
                return Err(ServeError::Artifact("baseline mix sums to zero".into()));
            }
            Some(mix)
        } else {
            None
        };
        let packed = if version < 3 {
            None
        } else if r.get_bool()? {
            let section = r.get_bytes()?;
            // PackedModelCodes::from_bytes validates the CRC; a failure
            // surfaces as a typed quantization error (corrupt packed
            // codes), distinct from the structural Artifact errors above.
            Some(PackedModelCodes::from_bytes(&section)?)
        } else {
            None
        };
        if !r.is_exhausted() {
            return Err(ServeError::Artifact("trailing bytes after artifact".into()));
        }
        Ok(ModelArtifact {
            arch,
            input_shape,
            state,
            quant,
            baseline_mix,
            packed,
        })
    }

    /// Writes the artifact atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        atomic_write(path, &self.to_bytes())?;
        Ok(())
    }

    /// Reads and decodes an artifact file.
    ///
    /// # Errors
    ///
    /// Filesystem or decode errors.
    pub fn load(path: impl AsRef<Path>) -> Result<ModelArtifact> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| ServeError::Artifact(format!("read {}: {e}", path.as_ref().display())))?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbq_nn::state_dict;

    fn tiny_artifact(quant: bool) -> ModelArtifact {
        let arch = ArchSpec::Mlp(vec![4, 6, 3]);
        let mut net = arch.build().unwrap();
        let state = state_dict(&mut net);
        let quant = quant.then(|| QuantState {
            arrangement: {
                let mut a = BitArrangement::new();
                a.push(UnitArrangement::uniform(
                    "fc2",
                    3,
                    6,
                    BitWidth::new(4).unwrap(),
                ));
                a
            },
            act_bits: 4,
            act_clips: vec![("relu1".into(), 1.25)],
        });
        ModelArtifact {
            arch,
            input_shape: vec![4],
            state,
            quant,
            baseline_mix: Some(vec![0.5, 0.25, 0.25]),
            packed: None,
        }
    }

    /// A fixture with a quantizable *middle* layer (the zoo pins first
    /// and last layers as non-quantizable) and the V3 packed-code section
    /// attached, compiled from the artifact's own state (verifies clean).
    fn packed_artifact() -> ModelArtifact {
        let arch = ArchSpec::Mlp(vec![4, 6, 5, 3]);
        let mut net = arch.build().unwrap();
        let state = state_dict(&mut net);
        let mut arrangement = BitArrangement::new();
        arrangement.push(UnitArrangement::uniform(
            "fc2",
            5,
            6,
            BitWidth::new(2).unwrap(),
        ));
        let mut a = ModelArtifact {
            arch,
            input_shape: vec![4],
            state,
            quant: Some(QuantState {
                arrangement,
                act_bits: 4,
                act_clips: vec![("relu1".into(), 1.25), ("relu2".into(), 0.9)],
            }),
            baseline_mix: None,
            packed: None,
        };
        a.packed = Some(crate::registry::compile_packed_codes(&a).unwrap());
        a
    }

    #[test]
    fn round_trip_is_exact_both_with_and_without_quant() {
        for q in [false, true] {
            let a = tiny_artifact(q);
            let b = ModelArtifact::from_bytes(&a.to_bytes()).unwrap();
            assert_eq!(a, b);
            // Deterministic encoding: same artifact, same bytes.
            assert_eq!(a.to_bytes(), b.to_bytes());
        }
    }

    #[test]
    fn corrupt_magic_and_truncation_are_rejected() {
        let bytes = tiny_artifact(true).to_bytes();
        assert!(ModelArtifact::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut bad = bytes.clone();
        bad[9] ^= 0xFF;
        assert!(ModelArtifact::from_bytes(&bad).is_err());
        assert!(ModelArtifact::from_bytes(b"junk").is_err());
    }

    /// Re-encodes a current-format artifact in an older layout by hand:
    /// `magic` plus the shared body with `strip` trailing absent-section
    /// markers removed (V2 = no packed marker, V1 = neither marker).
    fn downgrade(bytes: &[u8], magic: &[u8], strip: usize) -> Vec<u8> {
        let mut r = ByteReader::new(bytes);
        r.get_bytes().unwrap(); // magic
        let body_start = bytes.len() - r.remaining();
        let mut w = ByteWriter::new();
        w.put_bytes(magic);
        let mut out = w.into_bytes();
        out.extend_from_slice(&bytes[body_start..bytes.len() - strip]);
        out
    }

    #[test]
    fn v1_artifacts_still_decode_without_baseline_or_packed() {
        let mut a = tiny_artifact(true);
        a.baseline_mix = None;
        // Strip both trailing `put_bool(false)` markers (baseline, packed).
        let v1 = downgrade(&a.to_bytes(), MAGIC_V1, 2);
        let b = ModelArtifact::from_bytes(&v1).unwrap();
        assert_eq!(b.baseline_mix, None);
        assert_eq!(b.packed, None);
        assert_eq!(a, b);
    }

    #[test]
    fn v2_artifacts_still_decode_without_packed() {
        // A V2 artifact keeps its baseline mix but has no packed section.
        let a = tiny_artifact(true);
        let v2 = downgrade(&a.to_bytes(), MAGIC_V2, 1);
        let b = ModelArtifact::from_bytes(&v2).unwrap();
        assert_eq!(b.baseline_mix, a.baseline_mix);
        assert_eq!(b.packed, None);
        assert_eq!(a, b);
    }

    #[test]
    fn v3_packed_section_round_trips_byte_identically() {
        let a = packed_artifact();
        let bytes = a.to_bytes();
        let b = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.to_bytes(), bytes, "re-encode must be byte-identical");
        assert!(b.packed.is_some());
        assert_eq!(b.packed.unwrap().layer_count(), 1);
    }

    #[test]
    fn v3_packed_artifact_keeps_its_baseline_mix() {
        // Regression: the requant loop rewrites `baseline_mix` to the
        // observed mix before persisting a candidate, and candidates can
        // carry a packed-code section — both sections must survive one
        // encode/decode together, not shadow each other.
        let mut a = packed_artifact();
        a.baseline_mix = Some(vec![80.0, 10.0, 10.0]);
        let bytes = a.to_bytes();
        let b = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(b.baseline_mix, Some(vec![80.0, 10.0, 10.0]));
        assert!(b.packed.is_some());
        assert_eq!(a, b);
        assert_eq!(b.to_bytes(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn corrupted_packed_section_is_a_typed_quant_error() {
        let a = packed_artifact();
        let mut bytes = a.to_bytes();
        // Flip a byte inside the packed section (it is the final section,
        // comfortably inside the last quarter of the file): the CRC must
        // catch it and surface as corruption, not a structural error.
        let idx = bytes.len() - 12;
        bytes[idx] ^= 0x10;
        match ModelArtifact::from_bytes(&bytes) {
            Err(ServeError::Quant(msg)) => {
                assert!(msg.contains("corrupt packed codes"), "{msg}");
            }
            other => panic!("expected typed corruption error, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_baseline_mixes_are_rejected() {
        for bad in [vec![], vec![0.0, 0.0], vec![0.5, -0.1], vec![f64::NAN, 1.0]] {
            let mut a = tiny_artifact(false);
            a.baseline_mix = Some(bad);
            assert!(
                ModelArtifact::from_bytes(&a.to_bytes()).is_err(),
                "baseline {:?} decoded",
                a.baseline_mix
            );
        }
        let good = tiny_artifact(false);
        let back = ModelArtifact::from_bytes(&good.to_bytes()).unwrap();
        assert_eq!(back.baseline_mix, Some(vec![0.5, 0.25, 0.25]));
    }

    #[test]
    fn build_rebuilds_every_arch() {
        assert!(ArchSpec::Mlp(vec![8, 4, 2]).build().is_ok());
        assert!(ArchSpec::VggSmall {
            in_channels: 3,
            height: 8,
            width: 8,
            base_width: 4,
            fc_dim: 16,
            num_classes: 4,
        }
        .build()
        .is_ok());
        assert!(ArchSpec::ResNet20 {
            in_channels: 3,
            base_width: 4,
            expand: 1,
            blocks_per_stage: 1,
            num_classes: 4,
        }
        .build()
        .is_ok());
    }
}
