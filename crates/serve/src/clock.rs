//! Injectable time source for the serving runtime.
//!
//! The clock types live in `cbq-telemetry` (PR 6 moved them there so
//! telemetry timestamps, per-stage span timings, and scheduler `max_wait`
//! aging all run off the *same* injected time source). This module
//! re-exports them under the historical serve-side names: production uses
//! the monotonic [`SystemClock`], tests drive a [`ManualClock`] they
//! advance explicitly — batching behaviour and trace timestamps then
//! depend on *logical* time only and CI never races a real timer.

pub use cbq_telemetry::{Clock as ServeClock, ManualClock, SystemClock};
