//! Injectable time source for the batch scheduler.
//!
//! `max_wait` is the only wall-clock-dependent decision in the runtime,
//! so it is routed through a [`ServeClock`] trait: production uses the
//! monotonic [`SystemClock`], tests use a [`ManualClock`] they advance
//! explicitly — batching behaviour then depends on *logical* time only
//! and CI never races a real timer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source the scheduler consults for `max_wait` aging.
pub trait ServeClock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;

    /// Whether time only moves when a test advances it. Manual clocks
    /// make scheduler waits poll at a short real interval instead of
    /// sleeping out the (never-elapsing) wall timeout.
    fn is_manual(&self) -> bool {
        false
    }
}

/// Production clock: monotonic time since server start.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock anchored at "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeClock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// Test clock: time is an atomic nanosecond counter that only moves via
/// [`ManualClock::advance`]. Clone handles share the same timeline.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a clock at t=0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }
}

impl ServeClock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn is_manual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        let peer = c.clone();
        c.advance(Duration::from_millis(5));
        assert_eq!(peer.now(), Duration::from_millis(5));
        assert!(peer.is_manual());
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_manual());
    }
}
