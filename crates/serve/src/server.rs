//! The serving runtime: worker pool, request lifecycle, stats.
//!
//! `Server::start` spawns a pool of worker threads (sized by
//! [`cbq_tensor::parallel::worker_count`] unless overridden). Each worker
//! owns a private `(engine, Scratch)` slot per model version — engines
//! are cloned from the registry template on first use and *pre-warmed*
//! with one `max_batch`-sized forward so every steady-state request runs
//! entirely out of the arena pools (zero fresh heap allocations on the
//! forward path, same discipline as the PR 4 probe loop).
//!
//! Determinism contract: a response's logits are bit-identical to
//! [`offline_logits`](crate::registry::offline_logits) on the same
//! sample, no matter how requests were batched or interleaved. This
//! falls out of the PR 3/4 invariants — the packed GEMM accumulates
//! ascending-k per output element and every other stage is per-sample —
//! and the serve test battery enforces it across the thread matrix.
//!
//! Observability (PR 6): every request carries a dense admission
//! sequence number; workers time each lifecycle stage (queue wait,
//! batch-coalescing wait, compute) on the injected clock and, under
//! [`Server::start_observed`], feed completions into windowed per-class
//! counters with drift detection against a calibration baseline. The
//! derived artifacts — [`RequestTrace`]s, metrics snapshots, drift
//! reports — are deterministic at any worker count.

use crate::clock::{ServeClock, SystemClock};
use crate::error::{Result, ServeError};
use crate::observe::{render_snapshot, render_trace_jsonl, ObserveConfig, RequestTrace};
use crate::registry::{Engine, LoadedModel, ModelHandle, ModelRegistry};
use crate::requant::{
    RequantEvent, RequantFeed, RequantReport, RequantSetup, RequantSync, RequantWorker,
};
use crate::scheduler::{Batch, BatchPolicy, BatchScheduler, Pending};
use cbq_resilience::{atomic_write_text, ByteWriter};
use cbq_telemetry::{ClassWindow, DriftDetector, DriftReport, Histogram, Telemetry, WindowSet};
use cbq_tensor::dispatch::{self, NumericsMode};
use cbq_tensor::{parallel, Scratch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Micro-batching policy.
    pub policy: BatchPolicy,
    /// Worker threads; `0` means [`parallel::worker_count`].
    pub workers: usize,
}

/// One completed inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Request id (caller-chosen or auto-assigned).
    pub id: u64,
    /// Model name the request executed against.
    pub model: String,
    /// Model version the request executed against.
    pub version: u64,
    /// Raw logits, one value per class.
    pub logits: Vec<f32>,
    /// First-maximum argmax of the logits (same rule as offline
    /// `evaluate`).
    pub argmax: usize,
    /// How many requests rode in the same micro-batch (observability
    /// only — excluded from [`InferResponse::canonical_bytes`]).
    pub batch_size: usize,
    /// Queue + execution latency on the server clock (observability
    /// only — excluded from [`InferResponse::canonical_bytes`]).
    pub latency: Duration,
}

impl InferResponse {
    /// Deterministic byte encoding of the *semantic* response fields:
    /// id, model, version, argmax, and logits as raw IEEE-754 bits.
    /// Timing and batching metadata are excluded, so replaying a request
    /// log yields byte-identical responses regardless of scheduling.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.id);
        w.put_str(&self.model);
        w.put_u64(self.version);
        w.put_usize(self.argmax);
        w.put_f32_slice(&self.logits);
        w.into_bytes()
    }
}

/// A pending response: redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<InferResponse>>,
    clock: Arc<dyn ServeClock>,
}

impl Ticket {
    /// Blocks until the response (or a typed error) arrives.
    ///
    /// # Errors
    ///
    /// The execution error, or [`ServeError::ShuttingDown`] if the
    /// server terminated without answering.
    pub fn wait(self) -> Result<InferResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<InferResponse>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }

    /// Waits at most `timeout` on the server's injected clock, so
    /// callers can bound waits without busy-looping [`Ticket::try_wait`].
    ///
    /// Returns `None` when the logical deadline passes with the request
    /// still in flight — the ticket stays redeemable. Under a
    /// [`ManualClock`](crate::ManualClock) the deadline only elapses when
    /// a test advances the clock (short real sleeps between re-checks,
    /// same discipline as the scheduler's `max_wait` polling); under the
    /// system clock this is an ordinary bounded wait.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<InferResponse>> {
        let deadline = self.clock.now() + timeout;
        loop {
            match self.rx.try_recv() {
                Ok(r) => return Some(r),
                Err(TryRecvError::Disconnected) => return Some(Err(ServeError::ShuttingDown)),
                Err(TryRecvError::Empty) => {}
            }
            let now = self.clock.now();
            if now >= deadline {
                return None;
            }
            if self.clock.is_manual() {
                std::thread::sleep(crate::scheduler::MANUAL_POLL);
            } else {
                match self.rx.recv_timeout(deadline - now) {
                    Ok(r) => return Some(r),
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => return None,
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                        return Some(Err(ServeError::ShuttingDown))
                    }
                }
            }
        }
    }
}

/// Aggregate statistics returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Worker threads that served.
    pub workers: usize,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an execution error.
    pub failed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch observed.
    pub largest_batch: usize,
    /// Per-request latency distribution (µs buckets), admission to
    /// response.
    pub latency: Histogram,
    /// Admission-to-dispatch wait per request.
    pub queue_wait: Histogram,
    /// Coalescing wait of each request's batch (dispatch minus the
    /// *oldest* member's admission — how long batching held the batch).
    pub batch_wait: Histogram,
    /// Dispatch-to-response compute time per request.
    pub compute: Histogram,
    /// Sealed per-class windows (admission order), when observation was
    /// on; trailing partial windows are sealed at drain.
    pub windows: Vec<ClassWindow>,
    /// Drift verdicts, one per sealed window, when a baseline was set.
    pub drift: Vec<DriftReport>,
    /// Request traces sorted by admission sequence, when tracing was on.
    pub traces: Vec<RequestTrace>,
    /// Metrics snapshot files written (seal events plus the final one).
    pub snapshot_writes: u64,
    /// Scratch pool misses on the steady-state request path — fresh
    /// allocations *after* each worker slot's warm-up pass. The zero
    /// target is the PR 4 discipline, gated by the load-gen bench.
    pub steady_pool_misses: u64,
    /// Total fresh allocations including the expected warm-up misses.
    pub total_pool_misses: u64,
    /// Instruction set the kernels dispatched to (`"avx512"`,
    /// `"avx2+fma"`, `"neon"`, or `"scalar"`). Empty only for
    /// [`ServeStats::empty`] before any merge.
    pub kernel_isa: String,
    /// Numerics contract in force while serving — always `"bit-exact"`:
    /// [`Server::start_observed`] pins [`NumericsMode::BitExact`] so
    /// served logits are reproducible across hosts and ISAs.
    pub numerics: String,
    /// Lifetime record of the background requantization loop, when the
    /// server ran under [`Server::start_adaptive`].
    pub requant: Option<RequantReport>,
}

impl ServeStats {
    /// Zeroed statistics (no workers, nothing served) — the identity
    /// element for [`ServeStats::merge`].
    pub fn empty() -> ServeStats {
        ServeStats {
            workers: 0,
            accepted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            batches: 0,
            largest_batch: 0,
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            batch_wait: Histogram::new(),
            compute: Histogram::new(),
            windows: Vec::new(),
            drift: Vec::new(),
            traces: Vec::new(),
            snapshot_writes: 0,
            steady_pool_misses: 0,
            total_pool_misses: 0,
            kernel_isa: String::new(),
            numerics: String::new(),
            requant: None,
        }
    }

    /// Folds another server's statistics into this one — how the fleet
    /// tier aggregates per-replica stats into a fleet-wide view.
    ///
    /// Counters and histograms add; `workers` sums across replicas;
    /// `largest_batch` takes the max. Windows, drift verdicts, and traces
    /// concatenate in merge order: per-replica sequence numbers overlap
    /// across replicas, so a fleet-wide trace order is only meaningful
    /// per replica (callers wanting a global order must key on request
    /// ids, as the fleet replay log does).
    pub fn merge(&mut self, other: &ServeStats) {
        self.workers += other.workers;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.batches += other.batches;
        self.largest_batch = self.largest_batch.max(other.largest_batch);
        self.latency.merge(&other.latency);
        self.queue_wait.merge(&other.queue_wait);
        self.batch_wait.merge(&other.batch_wait);
        self.compute.merge(&other.compute);
        self.windows.extend(other.windows.iter().cloned());
        self.drift.extend(other.drift.iter().cloned());
        self.traces.extend(other.traces.iter().cloned());
        self.snapshot_writes += other.snapshot_writes;
        self.steady_pool_misses += other.steady_pool_misses;
        self.total_pool_misses += other.total_pool_misses;
        // One process, one dispatch resolution: every replica reports the
        // same ISA and mode, so adopt the first non-empty value.
        if self.kernel_isa.is_empty() {
            self.kernel_isa = other.kernel_isa.clone();
        }
        if self.numerics.is_empty() {
            self.numerics = other.numerics.clone();
        }
        // At most one replica runs the requant loop per merge chain today;
        // adopt the first report seen.
        if self.requant.is_none() {
            self.requant = other.requant.clone();
        }
    }
}

struct WorkerReport {
    latency: Histogram,
    queue_wait: Histogram,
    batch_wait: Histogram,
    compute: Histogram,
    traces: Vec<RequestTrace>,
    completed: u64,
    failed: u64,
    batches: u64,
    largest_batch: usize,
    steady_pool_misses: u64,
    total_pool_misses: u64,
}

impl WorkerReport {
    fn new() -> Self {
        WorkerReport {
            latency: Histogram::new(),
            queue_wait: Histogram::new(),
            batch_wait: Histogram::new(),
            compute: Histogram::new(),
            traces: Vec::new(),
            completed: 0,
            failed: 0,
            batches: 0,
            largest_batch: 0,
            steady_pool_misses: 0,
            total_pool_misses: 0,
        }
    }
}

/// Shared observation state: the windowed per-class counters and the
/// drift verdicts. One mutex, locked once per *completion* (not per
/// batch poll); sealing, drift evaluation, gauge emission, and snapshot
/// writes all happen under it so a snapshot never shows a sealed window
/// without its drift verdict.
struct Observer {
    config: ObserveConfig,
    detector: Option<DriftDetector>,
    telemetry: Telemetry,
    state: Mutex<ObserverState>,
}

struct ObserverState {
    windows: WindowSet,
    drift: Vec<DriftReport>,
    snapshot_writes: u64,
    /// Sending half of the requant event feed, when the server is
    /// adaptive. Living inside the observer state means every event is
    /// emitted under the observer lock: the worker sees one serialized
    /// stream where all of window `w`'s completions precede `Sealed(w)`.
    feed: Option<RequantFeed>,
}

impl Observer {
    fn new(config: ObserveConfig, telemetry: Telemetry) -> Result<Observer> {
        let detector = match &config.baseline {
            Some(mix) => Some(
                DriftDetector::new(mix, config.drift.clone()).ok_or_else(|| {
                    ServeError::InvalidConfig(
                        "drift baseline must be finite nonnegative weights with a positive sum"
                            .into(),
                    )
                })?,
            ),
            None => None,
        };
        let windows = WindowSet::new(config.classes, config.window);
        Ok(Observer {
            detector,
            telemetry,
            state: Mutex::new(ObserverState {
                windows,
                drift: Vec::new(),
                snapshot_writes: 0,
                feed: None,
            }),
            config,
        })
    }

    fn record(
        &self,
        seq: u64,
        predicted: usize,
        label: Option<usize>,
        latency_us: u64,
        sample: &[f32],
    ) {
        let mut st = self.state.lock().expect("observer lock poisoned");
        // Feed the labeled completion *before* recording it: if this
        // completion seals its window, the worker must already hold the
        // sample when `Sealed` arrives.
        if let (Some(feed), Some(label)) = (&st.feed, label) {
            feed.send(RequantEvent::Completed {
                window: seq / self.config.window,
                sample: sample.to_vec(),
                label,
                incumbent_ok: predicted == label,
            });
        }
        let sealed = st.windows.record(seq, predicted, label, latency_us);
        self.on_sealed(&mut st, &sealed, None);
    }

    fn record_error(&self, seq: u64) {
        let mut st = self.state.lock().expect("observer lock poisoned");
        let sealed = st.windows.record_error(seq);
        self.on_sealed(&mut st, &sealed, None);
    }

    fn on_sealed(&self, st: &mut ObserverState, sealed: &[u64], requant: Option<&RequantReport>) {
        if sealed.is_empty() {
            return;
        }
        for &idx in sealed {
            self.telemetry.counter_add("serve.windows_sealed", 1);
            let mut flagged = false;
            if let Some(detector) = &self.detector {
                let window = st
                    .windows
                    .sealed()
                    .iter()
                    .rev()
                    .find(|w| w.index == idx)
                    .expect("window sealed just now");
                let report = detector.evaluate(window);
                self.telemetry.gauge("serve.drift.l1", report.l1);
                self.telemetry.gauge("serve.drift.chi2", report.chi2);
                self.telemetry.gauge(
                    "serve.drift.flagged",
                    if report.flagged { 1.0 } else { 0.0 },
                );
                flagged = report.flagged;
                if report.flagged {
                    self.telemetry.counter_add("serve.drift.flags", 1);
                }
                st.drift.push(report);
            }
            if let Some(feed) = &st.feed {
                let window = st
                    .windows
                    .sealed()
                    .iter()
                    .rev()
                    .find(|w| w.index == idx)
                    .expect("window sealed just now");
                feed.send(RequantEvent::Sealed {
                    index: idx,
                    flagged,
                    observed_mix: window.predicted().to_vec(),
                });
            }
        }
        self.write_snapshot(st, requant);
    }

    fn write_snapshot(&self, st: &mut ObserverState, requant: Option<&RequantReport>) {
        if let Some(path) = &self.config.metrics_path {
            let doc = render_snapshot(&st.windows, &st.drift, requant);
            if atomic_write_text(path, &doc).is_ok() {
                st.snapshot_writes += 1;
            }
        }
    }

    /// Drops the requant feed, disconnecting the worker's event channel
    /// so it drains and exits. Called during shutdown after the serve
    /// workers have joined (no completion can race the close).
    fn close_requant(&self) {
        self.state.lock().expect("observer lock poisoned").feed = None;
    }

    /// Seals trailing partial windows, evaluates their drift, writes the
    /// final snapshot (including the requant report, when one exists),
    /// and returns the complete observation record.
    fn finalize_with(
        &self,
        requant: Option<&RequantReport>,
    ) -> (Vec<ClassWindow>, Vec<DriftReport>, u64) {
        let mut st = self.state.lock().expect("observer lock poisoned");
        let sealed = st.windows.finalize();
        self.on_sealed(&mut st, &sealed, requant);
        if sealed.is_empty() {
            // No new windows, but the final snapshot must still exist.
            self.write_snapshot(&mut st, requant);
        }
        (
            st.windows.sealed().to_vec(),
            st.drift.clone(),
            st.snapshot_writes,
        )
    }
}

/// The micro-batching inference server.
///
/// Cheap to share: all methods take `&self`, so wrap in an [`Arc`] and
/// hand clones to client threads. Dropping the server drains it; prefer
/// [`Server::shutdown`] to also collect [`ServeStats`].
pub struct Server {
    scheduler: Arc<BatchScheduler>,
    registry: Arc<ModelRegistry>,
    clock: Arc<dyn ServeClock>,
    telemetry: Telemetry,
    observer: Option<Arc<Observer>>,
    handles: Vec<JoinHandle<WorkerReport>>,
    requant: Option<RequantRuntime>,
    next_id: AtomicU64,
    workers: usize,
}

/// Handle on the background requant worker.
struct RequantRuntime {
    handle: JoinHandle<RequantReport>,
    sync: Arc<RequantSync>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers)
            .field("scheduler", &self.scheduler)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the worker pool with an explicit clock, telemetry, and
    /// per-class observation config.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an invalid policy, a degenerate
    /// drift baseline, or observation outputs requested with observation
    /// disabled.
    pub fn start_observed(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
        observe: ObserveConfig,
    ) -> Result<Server> {
        Self::start_inner(registry, config, clock, telemetry, observe, None)
    }

    /// Starts an *adaptive* server: observation plus the background
    /// requantization loop. When the drift detector flags a sealed
    /// window, the loop builds a candidate artifact for the observed
    /// class mix, shadow-scores it on labeled traffic (the candidate
    /// never answers a request), and hot-swaps at a window-aligned
    /// admission seq only if the candidate beats the incumbent by the
    /// configured margin — see [`crate::requant`].
    ///
    /// # Errors
    ///
    /// Everything [`Server::start_observed`] rejects, plus
    /// [`ServeError::InvalidConfig`] when observation or the drift
    /// baseline is missing (the loop has no trigger without them), the
    /// requant knobs are invalid, or the setup names an unregistered
    /// model.
    pub fn start_adaptive(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
        observe: ObserveConfig,
        requant: RequantSetup,
    ) -> Result<Server> {
        Self::start_inner(registry, config, clock, telemetry, observe, Some(requant))
    }

    fn start_inner(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
        observe: ObserveConfig,
        requant: Option<RequantSetup>,
    ) -> Result<Server> {
        let observer = if observe.enabled() {
            Some(Arc::new(Observer::new(observe, telemetry.clone())?))
        } else {
            if observe.trace || observe.trace_path.is_some() || observe.metrics_path.is_some() {
                return Err(ServeError::InvalidConfig(
                    "traces/metrics outputs need observation enabled (classes and window > 0)"
                        .into(),
                ));
            }
            None
        };
        let workers = if config.workers == 0 {
            parallel::worker_count()
        } else {
            config.workers
        };
        let scheduler = Arc::new(BatchScheduler::new(config.policy, clock.clone())?);
        // Arm the requant loop before any serve worker exists, so the
        // feed observes every completion from the first request on.
        let requant = match requant {
            None => None,
            Some(setup) => {
                let Some(observer) = &observer else {
                    return Err(ServeError::InvalidConfig(
                        "adaptive serving needs observation enabled (classes and window > 0)"
                            .into(),
                    ));
                };
                if observer.detector.is_none() {
                    return Err(ServeError::InvalidConfig(
                        "adaptive serving needs a drift baseline to trigger on".into(),
                    ));
                }
                if registry.latest(&setup.model).is_none() {
                    return Err(ServeError::UnknownModel(setup.model.clone()));
                }
                let (tx, rx) = channel();
                let sync = Arc::new(RequantSync::new());
                let worker = RequantWorker::new(
                    rx,
                    registry.clone(),
                    scheduler.clone(),
                    telemetry.clone(),
                    sync.clone(),
                    setup,
                    observer.config.window,
                )?;
                let handle = std::thread::Builder::new()
                    .name("cbq-requant".into())
                    .spawn(move || worker.run())
                    .expect("spawn requant worker");
                observer.state.lock().expect("observer lock poisoned").feed =
                    Some(RequantFeed {
                        tx,
                        sync: sync.clone(),
                    });
                Some(RequantRuntime { handle, sync })
            }
        };
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let scheduler = scheduler.clone();
            let registry = registry.clone();
            let clock = clock.clone();
            let telemetry = telemetry.clone();
            let observer = observer.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cbq-serve-{idx}"))
                    .spawn(move || worker_loop(scheduler, registry, clock, telemetry, observer))
                    .expect("spawn serve worker"),
            );
        }
        telemetry.gauge("serve.workers", workers as f64);
        // Serving pins bit-exact numerics: logits, traces, and replay
        // logs must be byte-identical across hosts regardless of which
        // ISA the kernels dispatch to. Fast mode is bench-only.
        dispatch::set_numerics_mode(NumericsMode::BitExact);
        telemetry.gauge("kernels.isa", dispatch::active_isa().gauge_value());
        telemetry.gauge("kernels.numerics", NumericsMode::BitExact.gauge_value());
        Ok(Server {
            scheduler,
            registry,
            clock,
            telemetry,
            observer,
            handles,
            requant,
            next_id: AtomicU64::new(1),
            workers,
        })
    }

    /// Starts the worker pool with an explicit clock and telemetry, no
    /// per-class observation.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an invalid policy.
    pub fn start_with(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
    ) -> Result<Server> {
        Self::start_observed(
            registry,
            config,
            clock,
            telemetry,
            ObserveConfig::disabled(),
        )
    }

    /// Starts with the system clock and the given telemetry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::start_with`].
    pub fn start(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        telemetry: Telemetry,
    ) -> Result<Server> {
        Self::start_with(registry, config, Arc::new(SystemClock::new()), telemetry)
    }

    /// The registry this server resolves handles against.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Worker threads serving.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.depth()
    }

    /// Blocks until the requant worker has processed every observer
    /// event emitted so far. No-op on a non-adaptive server.
    ///
    /// Deterministic drill step: "submit a window, wait the tickets,
    /// `requant_sync()`" guarantees the loop's state machine has reacted
    /// to that window before the next one is offered.
    pub fn requant_sync(&self) {
        if let Some(rt) = &self.requant {
            rt.sync.wait_idle();
        }
    }

    /// Installs a seq-pinned route: admissions of `to`'s model name from
    /// the next `window`-aligned admission seq on execute against `to`.
    /// Returns the cutover seq. This is the hot-swap primitive the
    /// requant loop uses internally, exposed so a fleet controller can
    /// cut replicas over to an externally built artifact.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when `to` is not registered,
    /// [`ServeError::InvalidConfig`] for a zero window.
    pub fn install_route_at_boundary(&self, to: &ModelHandle, window: u64) -> Result<u64> {
        if window == 0 {
            return Err(ServeError::InvalidConfig(
                "cutover window must be >= 1".into(),
            ));
        }
        self.registry.get(to)?;
        Ok(self.scheduler.install_route_at_boundary(to, window))
    }

    /// Submits a sample under an auto-assigned request id.
    ///
    /// # Errors
    ///
    /// Admission errors ([`ServeError::Overloaded`],
    /// [`ServeError::ShuttingDown`]) and request validation errors.
    pub fn submit(&self, model: &ModelHandle, sample: Vec<f32>) -> Result<Ticket> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit_request(id, model, sample, None)
    }

    /// Submits a sample with a caller-chosen id (replayable logs).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::submit`].
    pub fn submit_with_id(&self, id: u64, model: &ModelHandle, sample: Vec<f32>) -> Result<Ticket> {
        self.submit_request(id, model, sample, None)
    }

    /// Submits a sample with its ground-truth class, feeding the
    /// per-class accuracy telemetry (auto-assigned id).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::submit`].
    pub fn submit_labeled(
        &self,
        model: &ModelHandle,
        sample: Vec<f32>,
        label: usize,
    ) -> Result<Ticket> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit_request(id, model, sample, Some(label))
    }

    /// Full-control submission: caller-chosen id plus an optional
    /// ground-truth class for accuracy telemetry.
    ///
    /// # Errors
    ///
    /// Admission errors ([`ServeError::Overloaded`],
    /// [`ServeError::ShuttingDown`]) and request validation errors.
    pub fn submit_request(
        &self,
        id: u64,
        model: &ModelHandle,
        sample: Vec<f32>,
        label: Option<usize>,
    ) -> Result<Ticket> {
        let loaded = self.registry.get(model)?;
        if sample.len() != loaded.input_len() {
            return Err(ServeError::BadRequest(format!(
                "sample has {} values, model {} expects {}",
                sample.len(),
                model,
                loaded.input_len()
            )));
        }
        let (tx, rx) = channel();
        let outcome = self.scheduler.submit(Pending {
            id,
            model: model.clone(),
            sample,
            seq: 0, // assigned under the scheduler lock
            label,
            enqueued: self.clock.now(),
            reply: tx,
        });
        match outcome {
            Ok((_seq, depth)) => {
                self.telemetry.gauge("serve.queue_depth", depth as f64);
                Ok(Ticket {
                    rx,
                    clock: self.clock.clone(),
                })
            }
            Err(e) => {
                if matches!(e, ServeError::Overloaded { .. }) {
                    self.telemetry.counter_add("serve.rejected", 1);
                }
                Err(e)
            }
        }
    }

    /// Blocking convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Admission or execution errors.
    pub fn infer(&self, model: &ModelHandle, sample: Vec<f32>) -> Result<InferResponse> {
        self.submit(model, sample)?.wait()
    }

    /// Drains gracefully: admission stops immediately, queued and
    /// in-flight requests complete, workers exit, and the merged
    /// statistics are returned.
    pub fn shutdown(mut self) -> ServeStats {
        self.do_shutdown()
            .expect("first shutdown always yields stats")
    }

    fn do_shutdown(&mut self) -> Option<ServeStats> {
        if self.handles.is_empty() {
            return None;
        }
        let _span = self.telemetry.span("serve.drain");
        self.scheduler.drain();
        let mut stats = ServeStats {
            workers: self.workers,
            kernel_isa: dispatch::active_isa().name().to_string(),
            numerics: dispatch::numerics_mode().name().to_string(),
            ..ServeStats::empty()
        };
        for handle in std::mem::take(&mut self.handles) {
            let report = handle.join().expect("serve worker panicked");
            stats.latency.merge(&report.latency);
            stats.queue_wait.merge(&report.queue_wait);
            stats.batch_wait.merge(&report.batch_wait);
            stats.compute.merge(&report.compute);
            stats.traces.extend(report.traces);
            stats.completed += report.completed;
            stats.failed += report.failed;
            stats.batches += report.batches;
            stats.largest_batch = stats.largest_batch.max(report.largest_batch);
            stats.steady_pool_misses += report.steady_pool_misses;
            stats.total_pool_misses += report.total_pool_misses;
        }
        let (accepted, rejected) = self.scheduler.admission_counts();
        stats.accepted = accepted;
        stats.rejected = rejected;
        // Serve workers have all exited, so every completion has been
        // fed. Close the feed (disconnecting the worker's channel) and
        // join the requant worker before finalizing, so the final
        // snapshot carries its report.
        if let Some(rt) = self.requant.take() {
            if let Some(observer) = &self.observer {
                observer.close_requant();
            }
            stats.requant = Some(rt.handle.join().expect("requant worker panicked"));
        }
        // Workers have all exited: every completion is in. Seal trailing
        // partials, close out drift, and write the derived artifacts.
        if let Some(observer) = &self.observer {
            let (windows, drift, snapshot_writes) = observer.finalize_with(stats.requant.as_ref());
            stats.windows = windows;
            stats.drift = drift;
            stats.snapshot_writes = snapshot_writes;
            stats.traces.sort_by_key(|t| t.seq);
            if let Some(path) = &observer.config.trace_path {
                let _ = atomic_write_text(path, &render_trace_jsonl(&stats.traces));
            }
        }
        for (name, q) in [
            ("serve.latency_p50_us", 0.5),
            ("serve.latency_p95_us", 0.95),
            ("serve.latency_p99_us", 0.99),
        ] {
            self.telemetry
                .gauge(name, stats.latency.quantile_us(q) as f64);
        }
        self.telemetry.gauge(
            "serve.queue_wait_p99_us",
            stats.queue_wait.quantile_us(0.99) as f64,
        );
        self.telemetry.gauge(
            "serve.compute_p99_us",
            stats.compute.quantile_us(0.99) as f64,
        );
        self.telemetry
            .gauge("serve.steady_pool_misses", stats.steady_pool_misses as f64);
        self.telemetry.flush();
        Some(stats)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// One worker's private execution slot for a model version.
struct Slot {
    engine: Engine,
    scratch: Scratch,
    /// Arena misses recorded during the slot's warm-up pass; anything
    /// beyond this after serving is a steady-state miss.
    warm_misses: u64,
}

fn make_slot(model: &LoadedModel, max_batch: usize) -> Slot {
    let mut engine = model.instantiate();
    let mut scratch = Scratch::new();
    // Pre-warm at the largest batch the scheduler can form, staging the
    // input exactly like the serving path does (the staging buffer and
    // the engine's internal copy are live simultaneously): every smaller
    // batch then draws strictly smaller buffers with the same
    // take/recycle structure, so the best-fit pools always hit.
    let mut input = scratch.take_f32(max_batch * model.input_len());
    input.fill(0.0);
    let outcome = engine.infer(&input, model.input_shape(), &mut scratch);
    scratch.recycle_f32(input);
    if let Ok(logits) = outcome {
        scratch.recycle_f32(logits.into_vec());
    }
    let warm_misses = scratch.fresh_allocs();
    Slot {
        engine,
        scratch,
        warm_misses,
    }
}

fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// Builds the trace for one finished request and feeds the observer's
/// windows; shared by the success and failure paths.
#[allow(clippy::too_many_arguments)]
fn observe_done(
    observer: &Option<Arc<Observer>>,
    report: &mut WorkerReport,
    pending: &Pending,
    predicted: Option<usize>,
    dispatched: Duration,
    front_enqueued: Duration,
    completed: Duration,
    batch_size: usize,
) {
    let Some(observer) = observer else { return };
    let latency_us = duration_us(completed.saturating_sub(pending.enqueued));
    match predicted {
        Some(class) => observer.record(
            pending.seq,
            class,
            pending.label,
            latency_us,
            &pending.sample,
        ),
        None => observer.record_error(pending.seq),
    }
    if observer.config.tracing() {
        report.traces.push(RequestTrace {
            seq: pending.seq,
            id: pending.id,
            model: pending.model.to_string(),
            window: pending.seq / observer.config.window,
            enqueued_us: duration_us(pending.enqueued),
            dispatched_us: duration_us(dispatched),
            completed_us: duration_us(completed),
            queue_wait_us: duration_us(dispatched.saturating_sub(pending.enqueued)),
            batch_wait_us: duration_us(dispatched.saturating_sub(front_enqueued)),
            compute_us: duration_us(completed.saturating_sub(dispatched)),
            batch_size,
            predicted,
            label: pending.label,
            ok: predicted.is_some(),
        });
    }
}

fn worker_loop(
    scheduler: Arc<BatchScheduler>,
    registry: Arc<ModelRegistry>,
    clock: Arc<dyn ServeClock>,
    telemetry: Telemetry,
    observer: Option<Arc<Observer>>,
) -> WorkerReport {
    let max_batch = scheduler.policy().max_batch;
    let mut slots: HashMap<(String, u64), Slot> = HashMap::new();
    let mut report = WorkerReport::new();
    while let Some(batch) = scheduler.next_batch() {
        let Batch {
            requests,
            dispatched,
            front_enqueued,
        } = batch;
        let m = requests.len();
        let handle = requests[0].model.clone();
        let model = match registry.get(&handle) {
            Ok(m) => m,
            Err(e) => {
                let completed = clock.now();
                for pending in requests {
                    observe_done(
                        &observer,
                        &mut report,
                        &pending,
                        None,
                        dispatched,
                        front_enqueued,
                        completed,
                        m,
                    );
                    let _ = pending.reply.send(Err(e.clone()));
                    report.failed += 1;
                }
                continue;
            }
        };
        let key = (handle.name().to_string(), handle.version());
        let slot = slots
            .entry(key)
            .or_insert_with(|| make_slot(&model, max_batch));
        let row = model.input_len();
        let mut input = slot.scratch.take_f32(m * row);
        for (r, pending) in requests.iter().enumerate() {
            input[r * row..(r + 1) * row].copy_from_slice(&pending.sample);
        }
        let outcome = slot
            .engine
            .infer(&input, model.input_shape(), &mut slot.scratch);
        slot.scratch.recycle_f32(input);
        report.batches += 1;
        report.largest_batch = report.largest_batch.max(m);
        telemetry.counter_add("serve.batches", 1);
        let completed = clock.now();
        match outcome {
            Ok(logits) => {
                let classes = logits.shape()[1];
                let ls = logits.as_slice();
                for (r, pending) in requests.into_iter().enumerate() {
                    let row_logits = &ls[r * classes..(r + 1) * classes];
                    let mut best = 0;
                    for (i, &v) in row_logits.iter().enumerate() {
                        if v > row_logits[best] {
                            best = i;
                        }
                    }
                    let latency = completed.saturating_sub(pending.enqueued);
                    report.latency.record(latency);
                    report
                        .queue_wait
                        .record(dispatched.saturating_sub(pending.enqueued));
                    report
                        .batch_wait
                        .record(dispatched.saturating_sub(front_enqueued));
                    report.compute.record(completed.saturating_sub(dispatched));
                    observe_done(
                        &observer,
                        &mut report,
                        &pending,
                        Some(best),
                        dispatched,
                        front_enqueued,
                        completed,
                        m,
                    );
                    let _ = pending.reply.send(Ok(InferResponse {
                        id: pending.id,
                        model: handle.name().to_string(),
                        version: handle.version(),
                        logits: row_logits.to_vec(),
                        argmax: best,
                        batch_size: m,
                        latency,
                    }));
                    report.completed += 1;
                }
                slot.scratch.recycle_f32(logits.into_vec());
                telemetry.counter_add("serve.completed", m as u64);
            }
            Err(e) => {
                for pending in requests {
                    observe_done(
                        &observer,
                        &mut report,
                        &pending,
                        None,
                        dispatched,
                        front_enqueued,
                        completed,
                        m,
                    );
                    let _ = pending.reply.send(Err(e.clone()));
                    report.failed += 1;
                }
                telemetry.counter_add("serve.failed", m as u64);
            }
        }
    }
    for slot in slots.values() {
        let total = slot.scratch.fresh_allocs();
        report.total_pool_misses += total;
        report.steady_pool_misses += total.saturating_sub(slot.warm_misses);
    }
    report
}
