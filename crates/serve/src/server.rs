//! The serving runtime: worker pool, request lifecycle, stats.
//!
//! `Server::start` spawns a pool of worker threads (sized by
//! [`cbq_tensor::parallel::worker_count`] unless overridden). Each worker
//! owns a private `(engine, Scratch)` slot per model version — engines
//! are cloned from the registry template on first use and *pre-warmed*
//! with one `max_batch`-sized forward so every steady-state request runs
//! entirely out of the arena pools (zero fresh heap allocations on the
//! forward path, same discipline as the PR 4 probe loop).
//!
//! Determinism contract: a response's logits are bit-identical to
//! [`offline_logits`](crate::registry::offline_logits) on the same
//! sample, no matter how requests were batched or interleaved. This
//! falls out of the PR 3/4 invariants — the packed GEMM accumulates
//! ascending-k per output element and every other stage is per-sample —
//! and the serve test battery enforces it across the thread matrix.

use crate::clock::{ServeClock, SystemClock};
use crate::error::{Result, ServeError};
use crate::registry::{Engine, LoadedModel, ModelHandle, ModelRegistry};
use crate::scheduler::{BatchPolicy, BatchScheduler, Pending};
use cbq_resilience::ByteWriter;
use cbq_telemetry::{Histogram, Telemetry};
use cbq_tensor::{parallel, Scratch};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction knobs.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Micro-batching policy.
    pub policy: BatchPolicy,
    /// Worker threads; `0` means [`parallel::worker_count`].
    pub workers: usize,
}

/// One completed inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// Request id (caller-chosen or auto-assigned).
    pub id: u64,
    /// Model name the request executed against.
    pub model: String,
    /// Model version the request executed against.
    pub version: u64,
    /// Raw logits, one value per class.
    pub logits: Vec<f32>,
    /// First-maximum argmax of the logits (same rule as offline
    /// `evaluate`).
    pub argmax: usize,
    /// How many requests rode in the same micro-batch (observability
    /// only — excluded from [`InferResponse::canonical_bytes`]).
    pub batch_size: usize,
    /// Queue + execution latency on the server clock (observability
    /// only — excluded from [`InferResponse::canonical_bytes`]).
    pub latency: Duration,
}

impl InferResponse {
    /// Deterministic byte encoding of the *semantic* response fields:
    /// id, model, version, argmax, and logits as raw IEEE-754 bits.
    /// Timing and batching metadata are excluded, so replaying a request
    /// log yields byte-identical responses regardless of scheduling.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.id);
        w.put_str(&self.model);
        w.put_u64(self.version);
        w.put_usize(self.argmax);
        w.put_f32_slice(&self.logits);
        w.into_bytes()
    }
}

/// A pending response: redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<InferResponse>>,
}

impl Ticket {
    /// Blocks until the response (or a typed error) arrives.
    ///
    /// # Errors
    ///
    /// The execution error, or [`ServeError::ShuttingDown`] if the
    /// server terminated without answering.
    pub fn wait(self) -> Result<InferResponse> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<InferResponse>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Aggregate statistics returned by [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Worker threads that served.
    pub workers: usize,
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests rejected with [`ServeError::Overloaded`].
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an execution error.
    pub failed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch observed.
    pub largest_batch: usize,
    /// Per-request latency distribution (µs buckets).
    pub latency: Histogram,
    /// Scratch pool misses on the steady-state request path — fresh
    /// allocations *after* each worker slot's warm-up pass. The zero
    /// target is the PR 4 discipline, gated by the load-gen bench.
    pub steady_pool_misses: u64,
    /// Total fresh allocations including the expected warm-up misses.
    pub total_pool_misses: u64,
}

struct WorkerReport {
    latency: Histogram,
    completed: u64,
    failed: u64,
    batches: u64,
    largest_batch: usize,
    steady_pool_misses: u64,
    total_pool_misses: u64,
}

/// The micro-batching inference server.
///
/// Cheap to share: all methods take `&self`, so wrap in an [`Arc`] and
/// hand clones to client threads. Dropping the server drains it; prefer
/// [`Server::shutdown`] to also collect [`ServeStats`].
pub struct Server {
    scheduler: Arc<BatchScheduler>,
    registry: Arc<ModelRegistry>,
    clock: Arc<dyn ServeClock>,
    telemetry: Telemetry,
    handles: Vec<JoinHandle<WorkerReport>>,
    next_id: AtomicU64,
    workers: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("workers", &self.workers)
            .field("scheduler", &self.scheduler)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the worker pool with an explicit clock and telemetry.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for an invalid policy.
    pub fn start_with(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        clock: Arc<dyn ServeClock>,
        telemetry: Telemetry,
    ) -> Result<Server> {
        let workers = if config.workers == 0 {
            parallel::worker_count()
        } else {
            config.workers
        };
        let scheduler = Arc::new(BatchScheduler::new(config.policy, clock.clone())?);
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let scheduler = scheduler.clone();
            let registry = registry.clone();
            let clock = clock.clone();
            let telemetry = telemetry.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cbq-serve-{idx}"))
                    .spawn(move || worker_loop(scheduler, registry, clock, telemetry))
                    .expect("spawn serve worker"),
            );
        }
        telemetry.gauge("serve.workers", workers as f64);
        Ok(Server {
            scheduler,
            registry,
            clock,
            telemetry,
            handles,
            next_id: AtomicU64::new(1),
            workers,
        })
    }

    /// Starts with the system clock and the given telemetry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::start_with`].
    pub fn start(
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
        telemetry: Telemetry,
    ) -> Result<Server> {
        Self::start_with(registry, config, Arc::new(SystemClock::new()), telemetry)
    }

    /// The registry this server resolves handles against.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Worker threads serving.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.depth()
    }

    /// Submits a sample under an auto-assigned request id.
    ///
    /// # Errors
    ///
    /// Admission errors ([`ServeError::Overloaded`],
    /// [`ServeError::ShuttingDown`]) and request validation errors.
    pub fn submit(&self, model: &ModelHandle, sample: Vec<f32>) -> Result<Ticket> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.submit_with_id(id, model, sample)
    }

    /// Submits a sample with a caller-chosen id (replayable logs).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Server::submit`].
    pub fn submit_with_id(&self, id: u64, model: &ModelHandle, sample: Vec<f32>) -> Result<Ticket> {
        let loaded = self.registry.get(model)?;
        if sample.len() != loaded.input_len() {
            return Err(ServeError::BadRequest(format!(
                "sample has {} values, model {} expects {}",
                sample.len(),
                model,
                loaded.input_len()
            )));
        }
        let (tx, rx) = channel();
        let outcome = self.scheduler.submit(Pending {
            id,
            model: model.clone(),
            sample,
            enqueued: self.clock.now(),
            reply: tx,
        });
        match outcome {
            Ok(depth) => {
                self.telemetry.gauge("serve.queue_depth", depth as f64);
                Ok(Ticket { rx })
            }
            Err(e) => {
                if matches!(e, ServeError::Overloaded { .. }) {
                    self.telemetry.counter_add("serve.rejected", 1);
                }
                Err(e)
            }
        }
    }

    /// Blocking convenience: submit and wait.
    ///
    /// # Errors
    ///
    /// Admission or execution errors.
    pub fn infer(&self, model: &ModelHandle, sample: Vec<f32>) -> Result<InferResponse> {
        self.submit(model, sample)?.wait()
    }

    /// Drains gracefully: admission stops immediately, queued and
    /// in-flight requests complete, workers exit, and the merged
    /// statistics are returned.
    pub fn shutdown(mut self) -> ServeStats {
        self.do_shutdown()
            .expect("first shutdown always yields stats")
    }

    fn do_shutdown(&mut self) -> Option<ServeStats> {
        if self.handles.is_empty() {
            return None;
        }
        let _span = self.telemetry.span("serve.drain");
        self.scheduler.drain();
        let mut latency = Histogram::new();
        let mut stats = ServeStats {
            workers: self.workers,
            accepted: 0,
            rejected: 0,
            completed: 0,
            failed: 0,
            batches: 0,
            largest_batch: 0,
            latency: Histogram::new(),
            steady_pool_misses: 0,
            total_pool_misses: 0,
        };
        for handle in std::mem::take(&mut self.handles) {
            let report = handle.join().expect("serve worker panicked");
            latency.merge(&report.latency);
            stats.completed += report.completed;
            stats.failed += report.failed;
            stats.batches += report.batches;
            stats.largest_batch = stats.largest_batch.max(report.largest_batch);
            stats.steady_pool_misses += report.steady_pool_misses;
            stats.total_pool_misses += report.total_pool_misses;
        }
        let (accepted, rejected) = self.scheduler.admission_counts();
        stats.accepted = accepted;
        stats.rejected = rejected;
        stats.latency = latency;
        self.telemetry.gauge(
            "serve.latency_p50_us",
            stats.latency.quantile_us(0.5) as f64,
        );
        self.telemetry.gauge(
            "serve.latency_p99_us",
            stats.latency.quantile_us(0.99) as f64,
        );
        self.telemetry
            .gauge("serve.steady_pool_misses", stats.steady_pool_misses as f64);
        self.telemetry.flush();
        Some(stats)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// One worker's private execution slot for a model version.
struct Slot {
    engine: Engine,
    scratch: Scratch,
    /// Arena misses recorded during the slot's warm-up pass; anything
    /// beyond this after serving is a steady-state miss.
    warm_misses: u64,
}

fn make_slot(model: &LoadedModel, max_batch: usize) -> Slot {
    let mut engine = model.instantiate();
    let mut scratch = Scratch::new();
    // Pre-warm at the largest batch the scheduler can form, staging the
    // input exactly like the serving path does (the staging buffer and
    // the engine's internal copy are live simultaneously): every smaller
    // batch then draws strictly smaller buffers with the same
    // take/recycle structure, so the best-fit pools always hit.
    let mut input = scratch.take_f32(max_batch * model.input_len());
    input.fill(0.0);
    let outcome = engine.infer(&input, model.input_shape(), &mut scratch);
    scratch.recycle_f32(input);
    if let Ok(logits) = outcome {
        scratch.recycle_f32(logits.into_vec());
    }
    let warm_misses = scratch.fresh_allocs();
    Slot {
        engine,
        scratch,
        warm_misses,
    }
}

fn worker_loop(
    scheduler: Arc<BatchScheduler>,
    registry: Arc<ModelRegistry>,
    clock: Arc<dyn ServeClock>,
    telemetry: Telemetry,
) -> WorkerReport {
    let max_batch = scheduler.policy().max_batch;
    let mut slots: HashMap<(String, u64), Slot> = HashMap::new();
    let mut report = WorkerReport {
        latency: Histogram::new(),
        completed: 0,
        failed: 0,
        batches: 0,
        largest_batch: 0,
        steady_pool_misses: 0,
        total_pool_misses: 0,
    };
    while let Some(batch) = scheduler.next_batch() {
        let handle = batch[0].model.clone();
        let model = match registry.get(&handle) {
            Ok(m) => m,
            Err(e) => {
                for pending in batch {
                    let _ = pending.reply.send(Err(e.clone()));
                    report.failed += 1;
                }
                continue;
            }
        };
        let key = (handle.name().to_string(), handle.version());
        let slot = slots
            .entry(key)
            .or_insert_with(|| make_slot(&model, max_batch));
        let m = batch.len();
        let row = model.input_len();
        let mut input = slot.scratch.take_f32(m * row);
        for (r, pending) in batch.iter().enumerate() {
            input[r * row..(r + 1) * row].copy_from_slice(&pending.sample);
        }
        let outcome = slot
            .engine
            .infer(&input, model.input_shape(), &mut slot.scratch);
        slot.scratch.recycle_f32(input);
        report.batches += 1;
        report.largest_batch = report.largest_batch.max(m);
        telemetry.counter_add("serve.batches", 1);
        match outcome {
            Ok(logits) => {
                let classes = logits.shape()[1];
                let ls = logits.as_slice();
                let now = clock.now();
                for (r, pending) in batch.into_iter().enumerate() {
                    let row_logits = &ls[r * classes..(r + 1) * classes];
                    let mut best = 0;
                    for (i, &v) in row_logits.iter().enumerate() {
                        if v > row_logits[best] {
                            best = i;
                        }
                    }
                    let latency = now.saturating_sub(pending.enqueued);
                    report.latency.record(latency);
                    let _ = pending.reply.send(Ok(InferResponse {
                        id: pending.id,
                        model: handle.name().to_string(),
                        version: handle.version(),
                        logits: row_logits.to_vec(),
                        argmax: best,
                        batch_size: m,
                        latency,
                    }));
                    report.completed += 1;
                }
                slot.scratch.recycle_f32(logits.into_vec());
                telemetry.counter_add("serve.completed", m as u64);
            }
            Err(e) => {
                for pending in batch {
                    let _ = pending.reply.send(Err(e.clone()));
                    report.failed += 1;
                }
                telemetry.counter_add("serve.failed", m as u64);
            }
        }
    }
    for slot in slots.values() {
        let total = slot.scratch.fresh_allocs();
        report.total_pool_misses += total;
        report.steady_pool_misses += total.saturating_sub(slot.warm_misses);
    }
    report
}
