//! Figure 1 made concrete: which neurons serve which classes?
//!
//! ```sh
//! cargo run --release --example class_pathways
//! ```
//!
//! Trains a small MLP on a 3-class dataset, computes the per-class
//! critical-pathway scores `β` (Eq. 6), and prints, for every hidden
//! neuron, the classes it serves — reproducing the paper's motivating
//! picture: some neurons belong to one class, some to several, and some
//! to none (prunable).

use cbq::core::{score_network, ScoreConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);
    let spec = SyntheticSpec {
        train_per_class: 60,
        ..SyntheticSpec::tiny(3)
    };
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let mut net = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng)?;
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(15, 0.05)
    };
    Trainer::new(tc).fit(&mut net, data.train(), &mut rng)?;

    let scores = score_network(&mut net, data.val(), 3, &ScoreConfig::new())?;
    println!("class-pathway membership (β ≥ 0.5 counts as 'serves the class'):\n");
    for unit in &scores.units {
        println!("layer {} ({} neurons):", unit.name, unit.out_channels);
        let mut exclusive = 0;
        let mut shared = 0;
        let mut dead = 0;
        for k in 0..unit.out_channels {
            let serves: Vec<usize> = (0..3).filter(|&m| unit.beta_filter[m][k] >= 0.5).collect();
            let tag = match serves.len() {
                0 => {
                    dead += 1;
                    "none (prunable)".to_string()
                }
                1 => {
                    exclusive += 1;
                    format!("class {} only", serves[0])
                }
                _ => {
                    shared += 1;
                    format!("classes {serves:?}")
                }
            };
            println!("  neuron {k:>2}: γ = {:.2}  -> {tag}", unit.phi[k]);
        }
        println!("  summary: {exclusive} class-exclusive, {shared} shared, {dead} serving none\n");
    }
    println!(
        "CQ's premise: shared neurons (high γ) deserve more bits; class-exclusive \
         neurons fewer; 'none' neurons can be pruned to 0 bits."
    );
    Ok(())
}
