//! Head-to-head: CQ vs APN-style uniform quantization vs WrapNet-style
//! low-precision accumulation, on ResNet-20-x1 over synthetic CIFAR-10.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```
//!
//! All three methods share the dataset, architecture, pre-training and
//! refining recipes, so the only difference is the quantization policy —
//! the comparison Figures 4 and 5 of the paper make.

use cbq::baselines::{run_apn, run_wrapnet, ApnConfig, WrapNetConfig};
use cbq::core::{CqConfig, CqPipeline, RefineConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, Sequential, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fresh(seed: u64) -> Result<(SyntheticImages, Sequential, StdRng), Box<dyn std::error::Error>> {
    // Same seed => same dataset and same initial weights for every method.
    let mut rng = StdRng::seed_from_u64(seed);
    let data = SyntheticImages::generate(&SyntheticSpec::cifar10_like(), &mut rng)?;
    let model = models::resnet20(&models::ResNetConfig::resnet20(3, 1, 10), &mut rng)?;
    Ok((data, model, rng))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::var("CBQ_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let pretrain = TrainerConfig::quick(epochs, 0.1);
    let refine = RefineConfig::quick(epochs, 0.01);
    let bits = 2u8;

    // Class-based quantization.
    let (data, model, mut rng) = fresh(11)?;
    let mut cq_cfg = CqConfig::new(bits as f32, bits as f32);
    cq_cfg.pretrain = Some(pretrain.clone());
    cq_cfg.refine = refine.clone();
    cq_cfg.search.step = 0.2;
    let cq = CqPipeline::new(cq_cfg).run(model, &data, &mut rng)?;

    // APN-style uniform quantization.
    let (data, model, mut rng) = fresh(11)?;
    let mut apn_cfg = ApnConfig::new(bits, bits);
    apn_cfg.pretrain = Some(pretrain.clone());
    apn_cfg.refine = refine.clone();
    let apn = run_apn(model, &data, &apn_cfg, &mut rng)?;

    // WrapNet-style low-precision accumulator.
    let (data, model, mut rng) = fresh(11)?;
    let mut wn_cfg = WrapNetConfig::new(bits, bits + 2);
    wn_cfg.pretrain = Some(pretrain);
    wn_cfg.refine = refine;
    let wn = run_wrapnet(model, &data, &wn_cfg, &mut rng)?;

    println!("== ResNet-20-x1 on synthetic CIFAR-10, {bits}.0/{bits}.0 ==");
    println!("method      fp acc   quantized   refined   avg bits");
    println!(
        "CQ          {:5.1}%      {:5.1}%    {:5.1}%      {:.2}",
        100.0 * cq.fp_accuracy,
        100.0 * cq.pre_refine_accuracy,
        100.0 * cq.final_accuracy,
        cq.search.final_avg_bits
    );
    println!(
        "APN         {:5.1}%      {:5.1}%    {:5.1}%      {:.2}",
        100.0 * apn.fp_accuracy,
        100.0 * apn.pre_refine_accuracy,
        100.0 * apn.final_accuracy,
        apn.arrangement.average_bits()
    );
    println!(
        "WrapNet     {:5.1}%      {:5.1}%    {:5.1}%      {:.2}  (acc 8b, act {}b)",
        100.0 * wn.fp_accuracy,
        100.0 * wn.pre_refine_accuracy,
        100.0 * wn.final_accuracy,
        wn.arrangement.average_bits(),
        bits + 2
    );
    Ok(())
}
