//! ResNet-20 on the synthetic CIFAR-100 stand-in with per-class damage
//! analysis: does an aggressive bit budget sacrifice whole classes?
//!
//! ```sh
//! cargo run --release --example resnet_cifar100
//! CBQ_EPOCHS=8 CBQ_CLASSES=50 cargo run --release --example resnet_cifar100
//! ```

use cbq::core::{CqConfig, CqPipeline, RefineConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::var("CBQ_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let classes: usize = std::env::var("CBQ_CLASSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let mut rng = StdRng::seed_from_u64(2);
    let spec = SyntheticSpec {
        num_classes: classes,
        train_per_class: 60,
        val_per_class: 12,
        test_per_class: 12,
        shared_pool: 20,
        ..SyntheticSpec::cifar100_like()
    };
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    let model = models::resnet20(&models::ResNetConfig::resnet20(3, 1, classes), &mut rng)?;

    let mut config = CqConfig::new(3.0, 3.0);
    config.pretrain = Some(TrainerConfig::quick(epochs, 0.1));
    config.refine = RefineConfig::quick(epochs * 2, 0.02);
    config.search.step = 0.2;
    let report = CqPipeline::new(config).run(model, &data, &mut rng)?;

    println!("{report}");
    println!("\nper-class accuracy after quantization:");
    let mut worst = (0usize, 1.0f32);
    for (c, &acc) in report.per_class_accuracy.iter().enumerate() {
        if acc < worst.1 {
            worst = (c, acc);
        }
        let bar = "#".repeat((acc * 30.0) as usize);
        println!("  class {c:>3}: {:>5.1}% {bar}", 100.0 * acc);
    }
    println!(
        "\nworst class: {} at {:.1}% — a class-aware bit allocation should \
         degrade classes evenly rather than dropping one.",
        worst.0,
        100.0 * worst.1
    );
    Ok(())
}
