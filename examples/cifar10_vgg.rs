//! The paper's flagship scenario: VGG-small on (synthetic) CIFAR-10,
//! quantized to a 2.0/2.0 weight/activation setting.
//!
//! ```sh
//! cargo run --release --example cifar10_vgg            # ~1 minute
//! CBQ_EPOCHS=12 cargo run --release --example cifar10_vgg  # closer to paper
//! ```
//!
//! Prints the per-phase accuracies, the searched thresholds (Figure 6's
//! horizontal lines) and the per-layer bit-width distribution (Figure 7's
//! stacks) for the VGG-small network.

use cbq::core::{CqConfig, CqPipeline, RefineConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epochs: usize = std::env::var("CBQ_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut rng = StdRng::seed_from_u64(0);
    let data = SyntheticImages::generate(&SyntheticSpec::cifar10_like(), &mut rng)?;
    let vcfg = models::VggConfig::for_input(3, 12, 12, data.num_classes());
    let model = models::vgg_small(&vcfg, &mut rng)?;

    let mut config = CqConfig::new(2.0, 2.0);
    config.pretrain = Some(TrainerConfig::quick(epochs, 0.02));
    config.refine = RefineConfig::quick(epochs, 0.004);
    config.search.step = 0.2;
    let report = CqPipeline::new(config).run(model, &data, &mut rng)?;

    println!("== VGG-small on synthetic CIFAR-10, 2.0/2.0 ==");
    println!("full precision : {:6.2}%", 100.0 * report.fp_accuracy);
    println!(
        "searched (raw) : {:6.2}%",
        100.0 * report.pre_refine_accuracy
    );
    println!("refined        : {:6.2}%", 100.0 * report.final_accuracy);
    println!(
        "average bits   : {:.3} (target 2.0)",
        report.search.final_avg_bits
    );
    println!(
        "thresholds p1..p4 (cf. paper Fig. 6): {:?}",
        report
            .search
            .thresholds
            .iter()
            .map(|t| format!("{t:.1}"))
            .collect::<Vec<_>>()
    );
    println!("\nlayer   0b   1b   2b   3b   4b   (filter counts, cf. Fig. 7)");
    for unit in report.search.arrangement.units() {
        let h = report.search.arrangement.unit_histogram(&unit.name)?;
        print!("{:<6}", unit.name);
        for c in &h.counts[..5] {
            print!(" {c:>4}");
        }
        println!();
    }
    println!("\nimportance-score ranges per layer (cf. Fig. 2):");
    for unit in &report.scores.units {
        let sorted = unit.sorted_phi();
        println!(
            "  {:<6} min {:.2}  median {:.2}  max {:.2}",
            unit.name,
            sorted.first().copied().unwrap_or(0.0),
            sorted.get(sorted.len() / 2).copied().unwrap_or(0.0),
            sorted.last().copied().unwrap_or(0.0)
        );
    }
    Ok(())
}
