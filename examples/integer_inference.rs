//! From fake-quant training to integer deployment: quantize a trained
//! MLP, then execute it with true integer code arithmetic and compare.
//!
//! ```sh
//! cargo run --release --example integer_inference
//! ```
//!
//! This is the handoff a fixed-point accelerator needs: integer weight
//! codes, per-filter scales, calibrated activation scales — and proof
//! that the integer path reproduces the trained network's predictions.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{evaluate, models, state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq::quant::{
    install_act_quant, install_uniform, set_act_bits, set_act_calibration, BitWidth,
    IntActivations, IntegerLinear,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng)?;
    let f = data.feature_len();
    let mut net = models::mlp(&[f, 16, 8, 3], &mut rng)?;
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(10, 0.05)
    };
    Trainer::new(tc).fit(&mut net, data.train(), &mut rng)?;

    // Quantize: 4-bit weights on the hidden layer, 4-bit activations.
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    for batch in data.val().batches(32) {
        net.forward(&batch.images, Phase::Eval)?;
    }
    set_act_calibration(&mut net, false);
    let bits = BitWidth::new(4)?;
    set_act_bits(&mut net, Some(bits));
    install_uniform(&mut net, bits);
    let fq_acc = evaluate(&mut net, data.test(), 64)?;

    // Export: weights + calibrated clips.
    let params = state_dict(&mut net);
    let mut clips = Vec::new();
    net.visit_layers_mut(&mut |l| {
        if let Some(q) = l.activation_quantizer_mut() {
            clips.push(q.clip());
        }
    });
    let w1 = &params.params["fc1.weight"];
    let b1 = &params.params["fc1.bias"];
    let w2 = &params.params["fc2.weight"];
    let b2 = &params.params["fc2.bias"];
    let w3 = &params.params["fc3.weight"];
    let b3 = &params.params["fc3.bias"];
    let lin2 = IntegerLinear::quantize(w2, &[bits; 8], Some(b2))?;
    println!(
        "compiled fc2 to integer codes: {}x{} weights",
        lin2.out_features(),
        lin2.in_features()
    );

    // Integer inference over the test set.
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in data.test().batches(32) {
        let x = batch.images.reshape(&[batch.len(), f])?;
        // fc1 is the unquantized first layer (paper protocol): f32.
        let mut h1 = x.matmul_nt(w1)?;
        for (i, v) in h1.as_mut_slice().iter_mut().enumerate() {
            *v += b1.as_slice()[i % 16];
        }
        let h1 = h1.map(|v| v.max(0.0));
        // hidden layer in integer arithmetic
        let codes = IntActivations::quantize(&h1, clips[0], bits)?;
        let h2 = lin2.forward(&codes)?;
        let h2 = h2.map(|v| v.max(0.0));
        let codes2 = IntActivations::quantize(&h2, clips[1], bits)?;
        // output layer f32 (unquantized)
        let mut logits = codes2.dequantize().matmul_nt(w3)?;
        for (i, v) in logits.as_mut_slice().iter_mut().enumerate() {
            *v += b3.as_slice()[i % 3];
        }
        for (p, &l) in logits.argmax_rows()?.iter().zip(&batch.labels) {
            total += 1;
            if *p == l {
                correct += 1;
            }
        }
    }
    let int_acc = correct as f32 / total as f32;
    println!("fake-quant accuracy   : {:.2}%", 100.0 * fq_acc);
    println!("integer-path accuracy : {:.2}%", 100.0 * int_acc);
    assert!((fq_acc - int_acc).abs() < 0.02, "paths disagree");
    println!("integer deployment reproduces the trained network ✓");
    Ok(())
}
