//! Quickstart: class-based quantization of a small MLP in under a minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a synthetic 4-class dataset, trains an MLP, then runs the
//! full CQ pipeline (score → search → refine) to a 2.0-bit average weight
//! width with 4-bit activations, and prints what happened at each phase.

use cbq::core::{CqConfig, CqPipeline, RefineConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. A small 4-class synthetic dataset (stand-in for CIFAR-style data).
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng)?;
    println!(
        "dataset: {} classes, {} train / {} val / {} test samples",
        data.num_classes(),
        data.train().len(),
        data.val().len(),
        data.test().len()
    );

    // 2. An MLP; the first and output layers stay full-precision (the
    //    paper's protocol), the two hidden layers get searched bit-widths.
    let model = models::mlp(&[data.feature_len(), 32, 16, data.num_classes()], &mut rng)?;

    // 3. CQ to a 2.0-bit average weight width, 4-bit activations.
    let mut config = CqConfig::new(2.0, 4.0);
    config.pretrain = Some(TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(15, 0.05)
    });
    config.refine = RefineConfig {
        batch_size: 16,
        ..RefineConfig::quick(10, 0.02)
    };
    config.score.samples_per_class = 8;
    let report = CqPipeline::new(config).run(model, &data, &mut rng)?;

    println!(
        "full-precision accuracy : {:6.2}%",
        100.0 * report.fp_accuracy
    );
    println!(
        "after search (no refine): {:6.2}%",
        100.0 * report.pre_refine_accuracy
    );
    println!(
        "after KD refining       : {:6.2}%",
        100.0 * report.final_accuracy
    );
    println!(
        "average weight bits     : {:.3}",
        report.search.final_avg_bits
    );
    println!(
        "model compression       : {:.1}x vs fp32",
        report.size.compression_ratio()
    );
    println!("\nper-layer bit-width histogram (filters at 0..=8 bits):");
    for unit in report.search.arrangement.units() {
        let h = report.search.arrangement.unit_histogram(&unit.name)?;
        println!("  {:<6} {:?}", unit.name, &h.counts[..5]);
    }
    Ok(())
}
