//! Deployment workflow: search a bit arrangement once, export it as JSON,
//! and re-install it on a freshly loaded model later.
//!
//! ```sh
//! cargo run --release --example deploy_arrangement
//! ```
//!
//! This is the artifact a hardware team would consume: the per-filter
//! bit-width table, with size accounting, serialized with serde.

use cbq::core::{score_network, search, ScoreConfig, SearchConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{evaluate, models, Trainer, TrainerConfig};
use cbq::quant::{install_arrangement, model_size_bits, BitArrangement};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(3);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(4), &mut rng)?;
    let mut model = models::mlp(&[data.feature_len(), 32, 16, 4], &mut rng)?;
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(12, 0.05)
    };
    Trainer::new(tc).fit(&mut model, data.train(), &mut rng)?;

    // Score and search to 2.0 average bits.
    let scores = score_network(&mut model, data.val(), 4, &ScoreConfig::new())?;
    let mut cfg = SearchConfig::new(2.0);
    cfg.probe_samples = 32;
    let outcome = search(&mut model, &scores, data.val(), &cfg)?;
    let acc_installed = evaluate(&mut model, data.test(), 64)?;

    // Export the arrangement.
    let json = serde_json::to_string_pretty(&outcome.arrangement)?;
    let path = std::env::temp_dir().join("cbq_arrangement.json");
    std::fs::write(&path, &json)?;
    println!(
        "exported arrangement to {} ({} bytes)",
        path.display(),
        json.len()
    );

    // ... later, in a fresh process: reload and re-install.
    let loaded: BitArrangement = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    assert_eq!(loaded, outcome.arrangement);
    install_arrangement(&mut model, &loaded)?;
    let acc_reloaded = evaluate(&mut model, data.test(), 64)?;
    assert!((acc_installed - acc_reloaded).abs() < 1e-6);

    let size = model_size_bits(&loaded, 0);
    println!("average bits      : {:.3}", loaded.average_bits());
    println!(
        "accuracy          : {:.2}% (identical before/after reload)",
        100.0 * acc_reloaded
    );
    println!(
        "quantized weights : {} in {} bits",
        size.quantized_weights, size.quantized_bits
    );
    println!("{loaded}");
    Ok(())
}
