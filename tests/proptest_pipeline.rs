//! Property-based tests over the full pipeline: random bit budgets and
//! activation widths must always produce valid reports on a tiny model.

use cbq::core::{CqConfig, CqPipeline, RefineConfig, ScoreConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, TrainerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pipeline_is_total_over_valid_configs(
        weight_bits in 0.5f32..4.0,
        act_bits in 0u8..=6,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 20, 10, 3], &mut rng).unwrap();
        let mut config = CqConfig::new(weight_bits, act_bits as f32);
        config.pretrain =
            Some(TrainerConfig { batch_size: 16, ..TrainerConfig::quick(4, 0.05) });
        config.refine = RefineConfig { batch_size: 16, ..RefineConfig::quick(2, 0.02) };
        config.score = ScoreConfig { samples_per_class: 4, epsilon: 1e-30 };
        config.search.probe_samples = 12;
        config.search.step = 0.25;
        let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();

        // Hard invariants that must hold for every valid configuration.
        prop_assert!(report.search.final_avg_bits <= weight_bits + 1e-4);
        prop_assert!(report.search.final_avg_bits >= 0.0);
        prop_assert!((0.0..=1.0).contains(&report.final_accuracy));
        prop_assert!((0.0..=1.0).contains(&report.fp_accuracy));
        prop_assert!(report.size.compression_ratio() >= 1.0);
        prop_assert_eq!(report.per_class_accuracy.len(), 3);
        for w in report.search.thresholds.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        // the arrangement the report carries recomputes to the same average
        prop_assert!(
            (report.search.arrangement.average_bits() - report.search.final_avg_bits).abs()
                < 1e-6
        );
    }
}
