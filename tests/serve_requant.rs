//! End-to-end drill of the closed drift loop: drift flag → background
//! re-quantization → shadow scoring → seq-pinned hot-swap — all
//! **deterministic at every worker count**.
//!
//! Four cases, per the serving contract:
//!
//! 1. Stationary traffic: the loop never arms, the version never moves,
//!    and every run byte-identical across worker counts.
//! 2. A class-mix shift: the flagged window triggers a rebuild, the
//!    candidate shadows two windows (never serving), and cutover lands
//!    at a window-aligned admission seq — post-cutover responses are
//!    bit-identical to an offline evaluation of the new artifact.
//! 3. A worse candidate: shadow scoring rejects it and the registry
//!    version never changes.
//! 4. A kill mid-requant (fault right after the checkpoint lands): the
//!    incumbent serves uninterrupted; a restart resumes from the
//!    checkpoint — builder never re-invoked — and completes the *same*
//!    cutover at the *same* admission seq as a never-killed run.
//!
//! Traffic is pooled by *offline-predicted* class (as in the
//! observability drill), so planned mixes are realized exactly and
//! incumbent accuracy is literally 1.0 — every accuracy delta in the
//! shadow comparison is the candidate's doing alone.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{state_dict, Trainer, TrainerConfig};
use cbq::resilience::FaultPlan;
use cbq::serve::{
    achieved_mix, offline_logits, ArchSpec, Backend, BatchPolicy, CandidateBuilder, ManualClock,
    ModelArtifact, ModelRegistry, ObserveConfig, RequantConfig, RequantDecision, RequantSetup,
    Server, ServerConfig,
};
use cbq::telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 91;
const WINDOW: u64 = 16;
const SHADOW_WINDOWS: u64 = 2;

/// Worker counts under test, from `CBQ_TEST_THREADS` (default `1,2,4,7`).
fn thread_counts() -> Vec<usize> {
    let spec = std::env::var("CBQ_TEST_THREADS").unwrap_or_else(|_| "1,2,4,7".into());
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!counts.is_empty(), "CBQ_TEST_THREADS={spec} parsed empty");
    counts
}

/// A trained float artifact plus the test samples pooled by their
/// *offline-predicted* class (same fixture as the observability drill).
fn fixture() -> (ModelArtifact, Vec<(Vec<f32>, usize)>, usize) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 24, 16, spec.num_classes]);
    let mut net = arch.build_init(&mut rng).unwrap();
    Trainer::new(TrainerConfig::quick(2, 0.1))
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    let artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state: state_dict(&mut net),
        quant: None,
        baseline_mix: None,
        packed: None,
    };

    let registry = ModelRegistry::new();
    let handle = registry.load("cls", &artifact, Backend::Float).unwrap();
    let model = registry.get(&handle).unwrap();
    let test = data.test();
    let item_len: usize = test.images().shape()[1..].iter().product();
    let images = test.images().as_slice();
    let mut labeled = Vec::new();
    let mut seen = vec![false; spec.num_classes];
    for j in 0..test.len() {
        let sample = images[j * item_len..(j + 1) * item_len].to_vec();
        let logits = offline_logits(&model, &sample).unwrap();
        let predicted = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(c, _)| c)
            .unwrap();
        seen[predicted] = true;
        labeled.push((sample, predicted));
    }
    assert!(
        seen.iter().all(|&s| s),
        "fixture model must predict every class at least once; adjust SEED"
    );
    (artifact, labeled, spec.num_classes)
}

/// Name of the bias parameter on the classifier head (the tensor with
/// one value per class — hidden widths differ, so it is unique).
fn head_bias_name(artifact: &ModelArtifact, classes: usize) -> String {
    artifact
        .state
        .params
        .iter()
        .find(|(n, t)| n.ends_with(".bias") && t.as_slice().len() == classes)
        .map(|(n, _)| n.clone())
        .expect("classifier head bias")
}

/// A builder whose candidate is *equally accurate but numerically
/// distinct*: every head bias shifted by the same constant moves all
/// logits together, so the argmax — and therefore shadow accuracy — is
/// untouched while the served bytes change detectably.
fn good_builder(calls: Arc<AtomicU64>, classes: usize) -> Box<dyn CandidateBuilder> {
    Box::new(
        move |_mix: &[u64], incumbent: &ModelArtifact| -> cbq::serve::Result<ModelArtifact> {
            calls.fetch_add(1, Ordering::SeqCst);
            let mut art = incumbent.clone();
            let name = head_bias_name(&art, classes);
            let bias = art.state.params.get_mut(&name).expect("head bias");
            for v in bias.as_mut_slice() {
                *v += 3.0;
            }
            Ok(art)
        },
    )
}

/// A builder whose candidate is deterministically *worse*: the head is
/// zeroed and its bias one-hot on class 1, so the candidate answers
/// class 1 unconditionally — hopeless against class-0-heavy traffic.
fn bad_builder(calls: Arc<AtomicU64>, classes: usize) -> Box<dyn CandidateBuilder> {
    Box::new(
        move |_mix: &[u64], incumbent: &ModelArtifact| -> cbq::serve::Result<ModelArtifact> {
            calls.fetch_add(1, Ordering::SeqCst);
            let mut art = incumbent.clone();
            let bias_name = head_bias_name(&art, classes);
            let weight_name = format!(
                "{}.weight",
                bias_name.strip_suffix(".bias").expect("bias suffix")
            );
            let weight = art.state.params.get_mut(&weight_name).expect("head weight");
            weight.as_mut_slice().fill(0.0);
            let bias = art.state.params.get_mut(&bias_name).expect("head bias");
            bias.as_mut_slice().fill(0.0);
            bias.as_mut_slice()[1] = 1.0;
            Ok(art)
        },
    )
}

/// The shared traffic plan: two stationary uniform windows, then every
/// later window fully concentrated on class 0. Window 2 is the flagged
/// trigger; windows 3–4 are the shadow span; windows 5–6 are the
/// post-decision span.
fn shifted_plan(
    pooled: &[(Vec<f32>, usize)],
    classes: usize,
    windows: usize,
) -> Vec<Vec<(Vec<f32>, usize)>> {
    let mut gen = cbq::serve::TrafficGenerator::new(pooled, classes).unwrap();
    let uniform = vec![1.0; classes];
    let shifted = {
        let mut m = vec![0.0; classes];
        m[0] = 1.0;
        m
    };
    let mut plan: Vec<Vec<(Vec<f32>, usize)>> = (0..2)
        .map(|_| gen.window(&uniform, WINDOW as usize))
        .collect();
    for _ in 2..windows {
        plan.push(gen.window(&shifted, WINDOW as usize));
    }
    plan
}

struct AdaptiveRun {
    stats: cbq::serve::ServeStats,
    /// `(seq, version, logits)` per response, in admission order.
    responses: Vec<(u64, u64, Vec<f32>)>,
    snapshot: String,
}

/// One adaptive run over `plan`. Each window is fully drained — tickets
/// waited, then `requant_sync()` — before the next submits, so the
/// requant state machine advances at exact admission-seq boundaries.
fn adaptive_run(
    workers: usize,
    artifact: &ModelArtifact,
    plan: &[Vec<(Vec<f32>, usize)>],
    classes: usize,
    config: RequantConfig,
    builder: Box<dyn CandidateBuilder>,
    out_dir: &Path,
) -> AdaptiveRun {
    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("cls", artifact, Backend::Float).unwrap();
    let clock = ManualClock::new();
    let metrics_path = out_dir.join(format!("metrics-{workers}.json"));
    let baseline = achieved_mix(&vec![1.0; classes], WINDOW as usize);
    let server = Server::start_adaptive(
        registry.clone(),
        ServerConfig {
            policy: BatchPolicy {
                max_batch: 1,
                max_wait: Duration::from_secs(3600),
                queue_capacity: 4096,
            },
            workers,
        },
        Arc::new(clock.clone()),
        Telemetry::disabled(),
        ObserveConfig {
            baseline: Some(baseline),
            window: WINDOW,
            trace: true,
            metrics_path: Some(metrics_path.clone()),
            ..ObserveConfig::for_classes(classes)
        },
        RequantSetup {
            model: "cls".into(),
            backend: Backend::Float,
            artifact: artifact.clone(),
            config,
            builder,
        },
    )
    .unwrap();

    let mut id = 0u64;
    let mut responses = Vec::new();
    for window in plan {
        let tickets: Vec<_> = window
            .iter()
            .map(|(sample, label)| {
                id += 1;
                server
                    .submit_request(id, &handle, sample.clone(), Some(*label))
                    .unwrap()
            })
            .collect();
        for ticket in tickets {
            let r = ticket.wait().unwrap();
            responses.push((r.version, r.logits));
        }
        // All tickets resolved: every Completed event (and the window's
        // Sealed event) is already *sent*; wait until the requant worker
        // has *processed* them so any trigger/decision lands before the
        // next window's admissions.
        server.requant_sync();
        clock.advance(Duration::from_millis(1));
    }
    let stats = server.shutdown();
    // Responses arrive ticket-by-ticket in submit order, which equals
    // seq order under the drained-window protocol.
    let responses = responses
        .into_iter()
        .enumerate()
        .map(|(seq, (v, l))| (seq as u64, v, l))
        .collect();
    let snapshot = std::fs::read_to_string(&metrics_path).unwrap();
    AdaptiveRun {
        stats,
        responses,
        snapshot,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbq-requant-{tag}-{SEED}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn stationary_traffic_never_triggers_and_stays_byte_identical() {
    let (artifact, pooled, classes) = fixture();
    let mut gen = cbq::serve::TrafficGenerator::new(&pooled, classes).unwrap();
    let uniform = vec![1.0; classes];
    let plan: Vec<Vec<(Vec<f32>, usize)>> = (0..5)
        .map(|_| gen.window(&uniform, WINDOW as usize))
        .collect();
    let out_dir = temp_dir("stationary");

    let mut reference: Option<(Vec<(u64, u64, Vec<f32>)>, String)> = None;
    for &workers in &thread_counts() {
        let calls = Arc::new(AtomicU64::new(0));
        let run = adaptive_run(
            workers,
            &artifact,
            &plan,
            classes,
            RequantConfig::default(),
            good_builder(calls.clone(), classes),
            &out_dir,
        );
        let report = run.stats.requant.as_ref().expect("adaptive run reports");
        assert_eq!(report.triggered, 0, "{workers} workers: phantom trigger");
        assert_eq!(report.built, 0);
        assert_eq!(report.cutovers, 0);
        assert!(report.jobs.is_empty());
        assert_eq!(calls.load(Ordering::SeqCst), 0, "builder ran unprovoked");
        assert!(
            run.responses.iter().all(|(_, v, _)| *v == 1),
            "{workers} workers: version moved without a cutover"
        );
        for report in &run.stats.drift {
            assert!(!report.flagged, "stationary window {} flagged", report.window);
        }
        // The requant section is part of the final snapshot even when
        // idle: zero counters, no jobs.
        assert!(run.snapshot.contains("\"requant\""));
        assert!(run.snapshot.contains("\"triggered\": 0"));
        match &reference {
            None => reference = Some((run.responses, run.snapshot)),
            Some((responses0, snapshot0)) => {
                assert_eq!(&run.responses, responses0, "{workers} workers: responses diverged");
                assert_eq!(&run.snapshot, snapshot0, "{workers} workers: snapshot diverged");
            }
        }
    }
}

#[test]
fn shift_triggers_shadow_scoring_and_window_aligned_cutover() {
    let (artifact, pooled, classes) = fixture();
    let plan = shifted_plan(&pooled, classes, 7);
    let out_dir = temp_dir("cutover");

    // The drained-window protocol fixes the decision point: the shadow
    // span ends when window 4 seals, and at that instant exactly
    // 5 windows of admissions exist — so the route pins to seq 80.
    let expected_cutover = 5 * WINDOW;

    let mut reference: Option<(Vec<(u64, u64, Vec<f32>)>, String)> = None;
    for &workers in &thread_counts() {
        let calls = Arc::new(AtomicU64::new(0));
        let run = adaptive_run(
            workers,
            &artifact,
            &plan,
            classes,
            RequantConfig::default(),
            good_builder(calls.clone(), classes),
            &out_dir,
        );
        let report = run.stats.requant.as_ref().expect("adaptive run reports");
        assert_eq!(report.triggered, 1, "{workers} workers");
        assert_eq!(report.built, 1);
        assert_eq!(report.cutovers, 1);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.aborted, 0);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(report.jobs.len(), 1);
        let job = &report.jobs[0];
        assert_eq!(job.trigger_window, 2);
        assert!(!job.from_checkpoint);
        // The observed mix of the fully-shifted trigger window.
        assert_eq!(job.observed_mix[0], WINDOW);
        assert_eq!(job.observed_mix.iter().sum::<u64>(), WINDOW);
        // Equal-accuracy candidate over two fully-labeled shadow
        // windows: 32 labeled, both sides perfect, delta zero — which
        // the default margin (0.0, "at least as good") promotes.
        assert_eq!(
            job.shadow.totals(),
            (SHADOW_WINDOWS * WINDOW, SHADOW_WINDOWS * WINDOW, SHADOW_WINDOWS * WINDOW)
        );
        let RequantDecision::Cutover { seq, version } = &job.decision else {
            panic!("{workers} workers: expected cutover, got {:?}", job.decision);
        };
        assert_eq!(*seq, expected_cutover, "{workers} workers: cutover seq");
        assert_eq!(*version, 2);

        // The served split: v1 strictly before the pinned seq, v2 from
        // it on — batches never straddle the boundary.
        for (seq, version, _) in &run.responses {
            let expected = if *seq < expected_cutover { 1 } else { 2 };
            assert_eq!(
                *version, expected,
                "{workers} workers: seq {seq} served by v{version}"
            );
        }

        // Post-cutover responses are bit-identical to an *offline*
        // evaluation of the requantized artifact, fetched through the
        // registry as v2 — the loop's output is a first-class model.
        let registry = Arc::new(ModelRegistry::new());
        registry.load("cls", &artifact, Backend::Float).unwrap();
        let mut candidate = artifact.clone();
        let name = head_bias_name(&candidate, classes);
        for v in candidate
            .state
            .params
            .get_mut(&name)
            .unwrap()
            .as_mut_slice()
        {
            *v += 3.0;
        }
        // The worker stamps the observed mix as the candidate's new
        // drift baseline before loading it — mirror that here.
        let mix: Vec<f64> = run.stats.requant.as_ref().unwrap().jobs[0]
            .observed_mix
            .iter()
            .map(|&c| c as f64)
            .collect();
        candidate.baseline_mix = Some(mix.clone());
        let v2 = registry.load("cls", &candidate, Backend::Float).unwrap();
        assert_eq!(v2.version(), 2);
        let model = registry.get(&v2).unwrap();
        // The reload carries the *new* baseline, not the incumbent's
        // calibration histogram.
        assert_eq!(model.baseline_mix(), Some(&mix[..]));
        let flat: Vec<&(Vec<f32>, usize)> = plan.iter().flatten().collect();
        for (seq, _, logits) in run.responses.iter().filter(|(s, _, _)| *s >= expected_cutover) {
            let offline = offline_logits(&model, &flat[*seq as usize].0).unwrap();
            assert_eq!(logits, &offline, "{workers} workers: seq {seq} drifted from offline");
        }
        // And they differ from the incumbent's logits — the swap is
        // observable in the bytes, not just the version string.
        let first_post = run
            .responses
            .iter()
            .find(|(s, _, _)| *s >= expected_cutover)
            .unwrap();
        let incumbent_registry = Arc::new(ModelRegistry::new());
        let h1 = incumbent_registry
            .load("cls", &artifact, Backend::Float)
            .unwrap();
        let m1 = incumbent_registry.get(&h1).unwrap();
        let incumbent_logits =
            offline_logits(&m1, &flat[first_post.0 as usize].0).unwrap();
        assert_ne!(first_post.2, incumbent_logits, "candidate must be numerically distinct");

        match &reference {
            None => reference = Some((run.responses, run.snapshot)),
            Some((responses0, snapshot0)) => {
                assert_eq!(&run.responses, responses0, "{workers} workers: responses diverged");
                assert_eq!(&run.snapshot, snapshot0, "{workers} workers: snapshot diverged");
            }
        }
    }
}

#[test]
fn worse_shadow_candidate_is_rejected_and_version_never_changes() {
    let (artifact, pooled, classes) = fixture();
    let plan = shifted_plan(&pooled, classes, 7);
    let out_dir = temp_dir("rejected");

    for &workers in &thread_counts() {
        let calls = Arc::new(AtomicU64::new(0));
        let run = adaptive_run(
            workers,
            &artifact,
            &plan,
            classes,
            RequantConfig::default(),
            bad_builder(calls.clone(), classes),
            &out_dir,
        );
        let report = run.stats.requant.as_ref().expect("adaptive run reports");
        assert_eq!(report.triggered, 1, "{workers} workers");
        assert_eq!(report.built, 1);
        assert_eq!(report.cutovers, 0);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.jobs.len(), 1);
        let job = &report.jobs[0];
        // Class-0-only shadow traffic against an always-class-1
        // candidate: the incumbent is perfect, the candidate scores
        // zero, and the delta is exactly minus the labeled count.
        let labeled = SHADOW_WINDOWS * WINDOW;
        assert_eq!(job.shadow.totals(), (labeled, labeled, 0));
        assert_eq!(
            job.decision,
            RequantDecision::Rejected {
                delta: -(labeled as i64)
            },
            "{workers} workers"
        );
        // The incumbent never blinked: every response v1, accuracy 1.0
        // in every window, and no v2 in the registry of the run (the
        // report records no cutover seq to even check).
        assert!(run.responses.iter().all(|(_, v, _)| *v == 1));
        for w in &run.stats.windows {
            assert_eq!(w.overall_accuracy(), Some(1.0));
        }
        assert!(run.snapshot.contains("\"kind\": \"rejected\""));
    }
}

#[test]
fn kill_mid_requant_leaves_incumbent_serving_and_resume_completes_the_same_cutover() {
    let (artifact, pooled, classes) = fixture();
    let plan = shifted_plan(&pooled, classes, 7);
    let ck_dir = temp_dir("kill-ck");
    let out_dir = temp_dir("kill-out");
    let expected_cutover = 5 * WINDOW;

    // Run 1: fault fires right after the candidate checkpoint lands —
    // the moment a crash is most dangerous. The job aborts, the worker
    // disarms, and the incumbent serves the whole plan untouched.
    let calls1 = Arc::new(AtomicU64::new(0));
    let run1 = adaptive_run(
        2,
        &artifact,
        &plan,
        classes,
        RequantConfig {
            checkpoint_dir: Some(ck_dir.clone()),
            faults: Some(Arc::new(FaultPlan::parse("fail-at:requant.commit").unwrap())),
            ..RequantConfig::default()
        },
        good_builder(calls1.clone(), classes),
        &out_dir,
    );
    let report1 = run1.stats.requant.as_ref().expect("report");
    assert_eq!(report1.triggered, 1);
    assert_eq!(report1.aborted, 1);
    assert_eq!(report1.cutovers, 0);
    assert_eq!(calls1.load(Ordering::SeqCst), 1, "candidate was built before the kill");
    assert_eq!(report1.jobs.len(), 1);
    assert_eq!(
        report1.jobs[0].decision,
        RequantDecision::Aborted {
            phase: "requant.commit".into()
        }
    );
    // Uninterrupted incumbent: all responses v1, all windows perfect.
    assert!(run1.responses.iter().all(|(_, v, _)| *v == 1));
    for w in &run1.stats.windows {
        assert_eq!(w.overall_accuracy(), Some(1.0));
    }

    // Run 2: restart over the same checkpoint dir, no fault. The same
    // traffic re-triggers at the same window with the same mix, the
    // persisted candidate is adopted without re-invoking the builder,
    // and the cutover completes.
    let calls2 = Arc::new(AtomicU64::new(0));
    let run2 = adaptive_run(
        2,
        &artifact,
        &plan,
        classes,
        RequantConfig {
            checkpoint_dir: Some(ck_dir.clone()),
            ..RequantConfig::default()
        },
        good_builder(calls2.clone(), classes),
        &out_dir,
    );
    let report2 = run2.stats.requant.as_ref().expect("report");
    assert_eq!(calls2.load(Ordering::SeqCst), 0, "resume must not re-search");
    assert_eq!(report2.checkpoint_hits, 1);
    assert_eq!(report2.cutovers, 1);
    assert_eq!(report2.jobs.len(), 1);
    assert!(report2.jobs[0].from_checkpoint);
    let RequantDecision::Cutover { seq: seq2, version } = &report2.jobs[0].decision else {
        panic!("resume run must cut over, got {:?}", report2.jobs[0].decision);
    };
    assert_eq!(*version, 2);

    // Run 3: the control — fresh checkpoint dir, never killed. Resume
    // and control land the cutover at the *same* admission seq with
    // byte-identical responses: the kill changed nothing downstream.
    let ck3 = temp_dir("kill-ck3");
    let calls3 = Arc::new(AtomicU64::new(0));
    let run3 = adaptive_run(
        2,
        &artifact,
        &plan,
        classes,
        RequantConfig {
            checkpoint_dir: Some(ck3),
            ..RequantConfig::default()
        },
        good_builder(calls3.clone(), classes),
        &out_dir,
    );
    let report3 = run3.stats.requant.as_ref().expect("report");
    assert_eq!(calls3.load(Ordering::SeqCst), 1);
    assert_eq!(report3.checkpoint_hits, 0);
    let RequantDecision::Cutover { seq: seq3, .. } = &report3.jobs[0].decision else {
        panic!("control run must cut over");
    };
    assert_eq!(seq2, seq3, "resume and control disagree on the cutover seq");
    assert_eq!(*seq2, expected_cutover);
    assert_eq!(run2.responses, run3.responses, "resume diverged from control");
    assert_eq!(
        run2.stats.requant.as_ref().unwrap().jobs[0].shadow,
        run3.stats.requant.as_ref().unwrap().jobs[0].shadow,
        "shadow accounting diverged"
    );
}
