//! Integration tests of the optional training machinery: Adam, cosine
//! schedules, dropout-regularized models, and state-dict round trips
//! through a quantized pipeline.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::layers::{Dropout, Linear, Relu};
use cbq::nn::{
    evaluate, load_state_dict, losses, state_dict, Adam, AdamConfig, CosineLr, Layer, Phase,
    Sequential,
};
use cbq::quant::{install_uniform, BitWidth};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dropout_mlp(f: usize, classes: usize, rng: &mut StdRng) -> Sequential {
    let mut net = Sequential::new("dropout_mlp");
    net.push(cbq::nn::layers::Flatten::new("flatten0"));
    net.push(
        Linear::new("fc1", f, 24, true, rng)
            .unwrap()
            .without_quantization(),
    );
    net.push(Relu::new("relu1"));
    net.push(Dropout::new("drop1", 0.2, 7).unwrap());
    net.push(Linear::new("fc2", 24, 12, true, rng).unwrap());
    net.push(Relu::new("relu2"));
    net.push(
        Linear::new("fc3", 12, classes, true, rng)
            .unwrap()
            .without_quantization(),
    );
    net
}

#[test]
fn adam_with_cosine_trains_a_dropout_model() {
    let mut rng = StdRng::seed_from_u64(600);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
    let mut net = dropout_mlp(data.feature_len(), 3, &mut rng);
    let schedule = CosineLr::new(0.01, 0.0005, 12);
    let mut opt = Adam::new(AdamConfig::new(0.01));
    for epoch in 0..12 {
        opt.set_lr(schedule.lr_at(epoch));
        for batch in data.train().batches_shuffled(16, &mut rng) {
            net.zero_grad();
            let logits = net.forward(&batch.images, Phase::Train).unwrap();
            let (_, grad) = losses::cross_entropy(&logits, &batch.labels).unwrap();
            net.backward(&grad).unwrap();
            opt.step(&mut net).unwrap();
        }
    }
    let acc = evaluate(&mut net, data.test(), 64).unwrap();
    assert!(acc > 0.8, "adam+cosine+dropout failed to learn: {acc}");
}

#[test]
fn quantized_model_survives_state_dict_round_trip() {
    let mut rng = StdRng::seed_from_u64(601);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
    let mut net = dropout_mlp(data.feature_len(), 3, &mut rng);
    let mut opt = Adam::new(AdamConfig::new(0.01));
    for batch in data.train().batches_shuffled(16, &mut rng) {
        net.zero_grad();
        let logits = net.forward(&batch.images, Phase::Train).unwrap();
        let (_, grad) = losses::cross_entropy(&logits, &batch.labels).unwrap();
        net.backward(&grad).unwrap();
        opt.step(&mut net).unwrap();
    }
    install_uniform(&mut net, BitWidth::new(3).unwrap());
    let acc_before = evaluate(&mut net, data.test(), 64).unwrap();

    // snapshot -> fresh model -> restore -> re-quantize -> same accuracy
    let snapshot = state_dict(&mut net);
    let json = serde_json::to_string(&snapshot).unwrap();
    let restored: cbq::nn::StateDict = serde_json::from_str(&json).unwrap();
    let mut rng2 = StdRng::seed_from_u64(999);
    let mut fresh = dropout_mlp(data.feature_len(), 3, &mut rng2);
    load_state_dict(&mut fresh, &restored).unwrap();
    install_uniform(&mut fresh, BitWidth::new(3).unwrap());
    let acc_after = evaluate(&mut fresh, data.test(), 64).unwrap();
    assert!((acc_before - acc_after).abs() < 1e-6);
}

#[test]
fn dropout_layer_is_identity_at_eval_inside_network() {
    let mut rng = StdRng::seed_from_u64(602);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
    let mut net = dropout_mlp(data.feature_len(), 2, &mut rng);
    let x = data.test().batches(4).next().unwrap().images;
    let a = net.forward(&x, Phase::Eval).unwrap();
    let b = net.forward(&x, Phase::Eval).unwrap();
    assert_eq!(a, b, "eval-mode dropout must be deterministic");
    // train mode differs across calls (random masks)
    let c = net.forward(&x, Phase::Train).unwrap();
    let d = net.forward(&x, Phase::Train).unwrap();
    assert_ne!(c, d, "train-mode dropout should vary");
}
