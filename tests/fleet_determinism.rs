//! The fleet tier's chaos gates: a multi-replica fleet with a mid-run
//! replica kill/restart must (1) complete every admitted request — zero
//! lost — and (2) produce a replay log whose sorted canonical bytes are
//! identical at any replica count, any worker count, and any fault
//! timing. Which replica served a request, whether it failed over, and
//! when the kill fired are all *invisible* to replay: replicas share one
//! model registry and canonical bytes exclude timing/batching metadata.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::fleet::{replica_name, Fleet, FleetConfig, FleetStats, RetryPolicy};
use cbq::nn::{state_dict, Trainer, TrainerConfig};
use cbq::resilience::FaultPlan;
use cbq::serve::{ArchSpec, Backend, BatchPolicy, ModelArtifact, ModelRegistry, ServerConfig};
use cbq::telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 83;
const REQUESTS: usize = 600;

/// Worker counts under test, from `CBQ_TEST_THREADS` (default `1,2,4,7`).
fn thread_counts() -> Vec<usize> {
    let spec = std::env::var("CBQ_TEST_THREADS").unwrap_or_else(|_| "1,2,4,7".into());
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!counts.is_empty(), "CBQ_TEST_THREADS={spec} parsed empty");
    counts
}

/// A trained float artifact plus request payloads (test rows).
fn fixture() -> (ModelArtifact, Vec<Vec<f32>>) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 20, spec.num_classes]);
    let mut net = arch.build_init(&mut rng).unwrap();
    Trainer::new(TrainerConfig::quick(1, 0.1))
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    let artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state: state_dict(&mut net),
        quant: None,
        baseline_mix: None,
        packed: None,
    };
    let test = data.test();
    let item_len: usize = test.images().shape()[1..].iter().product();
    let images = test.images().as_slice();
    let samples = (0..test.len())
        .map(|j| images[j * item_len..(j + 1) * item_len].to_vec())
        .collect();
    (artifact, samples)
}

/// Drives `REQUESTS` ids through a fleet from `clients` concurrent
/// client threads, with an optional `kill-replica` fault plan, and
/// returns the sorted replay log plus the fleet stats. Panics if any
/// request fails — the zero-lost gate.
fn run_fleet(
    artifact: &ModelArtifact,
    samples: &[Vec<f32>],
    replicas: usize,
    workers: usize,
    clients: usize,
    faults: Option<&str>,
) -> (Vec<Vec<u8>>, FleetStats) {
    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("m", artifact, Backend::Float).unwrap();
    let plan = faults.map(|spec| Arc::new(FaultPlan::parse(spec).unwrap()));
    let config = FleetConfig {
        replicas,
        server: ServerConfig {
            policy: BatchPolicy {
                max_batch: 5,
                max_wait: Duration::from_micros(200),
                queue_capacity: 4096,
            },
            workers,
        },
        // A kill mid-run can bounce every in-flight id off the dead
        // replica: attempts must cover a full ring walk plus overload
        // retries with room to spare.
        retry: RetryPolicy {
            max_attempts: (2 * replicas + 2) as u32,
            ..RetryPolicy::default()
        },
        ..FleetConfig::default()
    };
    let fleet = Fleet::start_with_faults(
        registry,
        config,
        Arc::new(cbq::serve::SystemClock::new()),
        Telemetry::disabled(),
        plan,
    )
    .unwrap();
    let mut responses = Vec::with_capacity(REQUESTS);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for c in 0..clients {
            let fleet = &fleet;
            let handle = &handle;
            joins.push(scope.spawn(move || {
                let mut out = Vec::new();
                // Client c serves ids c, c+clients, c+2*clients, …:
                // together exactly the ids 0..REQUESTS, disjointly.
                let mut id = c as u64;
                while (id as usize) < REQUESTS {
                    let sample = &samples[id as usize % samples.len()];
                    let resp = fleet
                        .infer_with_id(id, handle, sample.clone(), None)
                        .unwrap_or_else(|e| panic!("request {id} lost: {e}"));
                    assert_eq!(resp.id, id);
                    out.push(resp);
                    id += clients as u64;
                }
                out
            }));
        }
        for join in joins {
            responses.extend(join.join().expect("client panicked"));
        }
    });
    let stats = fleet.shutdown();
    assert_eq!(responses.len(), REQUESTS, "request lost or duplicated");
    responses.sort_by_key(|r| r.id);
    let log = responses.iter().map(|r| r.canonical_bytes()).collect();
    (log, stats)
}

#[test]
fn replay_log_is_byte_identical_across_replica_and_worker_counts() {
    let (artifact, samples) = fixture();
    let (reference, ref_stats) = run_fleet(&artifact, &samples, 1, 1, 1, None);
    assert_eq!(ref_stats.merged.completed, REQUESTS as u64);
    for replicas in [2usize, 4] {
        for &workers in &thread_counts() {
            let (log, stats) = run_fleet(&artifact, &samples, replicas, workers, 3, None);
            assert_eq!(
                log, reference,
                "replay diverged at {replicas} replicas / {workers} workers"
            );
            assert_eq!(stats.merged.completed, REQUESTS as u64);
            assert_eq!(stats.merged.failed, 0);
            // Traffic actually spread across the fleet.
            assert!(
                stats
                    .replicas
                    .iter()
                    .filter(|r| r.stats.completed > 0)
                    .count()
                    > 1,
                "all requests landed on one replica"
            );
        }
    }
}

#[test]
fn mid_run_kill_loses_nothing_and_leaves_replay_bytes_unchanged() {
    let (artifact, samples) = fixture();
    let (reference, _) = run_fleet(&artifact, &samples, 4, 2, 3, None);
    // The same drill at several fault timings, killing several victims:
    // the kill+restart must be invisible to the replay log.
    for (victim, at) in [(0usize, 50u64), (1, 200), (2, 550)] {
        let spec = format!("kill-replica:{}@{at}", replica_name(victim));
        let (log, stats) = run_fleet(&artifact, &samples, 4, 2, 3, Some(&spec));
        assert_eq!(log, reference, "replay diverged with fault {spec}");
        assert_eq!(stats.replica_restarts, 1, "fault {spec} did not fire once");
        assert_eq!(
            stats.replicas[victim].restarts, 1,
            "fault {spec} restarted the wrong replica"
        );
        // Zero lost: every fleet request returned a response (asserted
        // inside run_fleet), and the drained generations account for
        // every admitted request.
        assert_eq!(stats.merged.accepted, stats.merged.completed);
        assert_eq!(stats.merged.failed, 0);
    }
}

#[test]
fn fleet_with_faults_matches_single_server_reference() {
    // Cross-tier differential: the 1-replica/1-worker fleet log equals a
    // chaos-drilled 4-replica fleet's log *and* both match offline logits
    // implicitly via the serve determinism battery; here we pin fleet
    // vs. fleet across the chaos boundary at the widest worker count.
    let (artifact, samples) = fixture();
    let widest = thread_counts().into_iter().max().unwrap();
    let (reference, _) = run_fleet(&artifact, &samples, 1, 1, 1, None);
    let spec = format!("kill-replica:{}@120", replica_name(1));
    let (log, stats) = run_fleet(&artifact, &samples, 4, widest, 4, Some(&spec));
    assert_eq!(log, reference, "chaos fleet diverged from serial reference");
    assert_eq!(stats.replica_restarts, 1);
}
