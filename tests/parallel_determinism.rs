//! Differential tests proving the parallel paths are *bit-exact*: at any
//! worker count, importance scores, the full search outcome, sharded
//! training, and every phase checkpoint must be byte-identical to the
//! serial reference — including a run interrupted under one thread count
//! and resumed under another.
//!
//! The thread counts under test come from `CBQ_TEST_THREADS` (a
//! comma-separated list; default `1,2,4,7` — deliberately including a
//! count that does not divide the per-class sample counts evenly).

use cbq::core::{
    score_network_with, search_with, CqConfig, CqPipeline, CqReport, Parallelism, RefineConfig,
    ScoreConfig, SearchConfig, SearchOutcome, Telemetry,
};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, Layer, Sequential, Trainer, TrainerConfig};
use cbq::resilience::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SEED: u64 = 1234;

/// Thread counts under test, from `CBQ_TEST_THREADS` (default `1,2,4,7`).
fn thread_counts() -> Vec<usize> {
    let spec = std::env::var("CBQ_TEST_THREADS").unwrap_or_else(|_| "1,2,4,7".into());
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!counts.is_empty(), "CBQ_TEST_THREADS={spec} parsed empty");
    counts
}

/// A small trained network plus its dataset, identical for every caller.
fn trained_fixture() -> (Sequential, SyntheticImages) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(4), &mut rng).unwrap();
    let mut net = models::mlp(&[data.feature_len(), 24, 16, 4], &mut rng).unwrap();
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(4, 0.05)
    };
    Trainer::new(tc)
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    (net, data)
}

fn score_cfg() -> ScoreConfig {
    ScoreConfig {
        samples_per_class: 10, // not divisible by 4 or 7 shards
        epsilon: 1e-30,
    }
}

fn search_cfg() -> SearchConfig {
    let mut cfg = SearchConfig::new(2.0);
    cfg.step = 0.25;
    cfg.probe_samples = 32;
    cfg
}

#[test]
fn importance_scores_bit_identical_across_thread_counts() {
    let (mut net, data) = trained_fixture();
    let tel = Telemetry::disabled();
    let baseline = score_network_with(
        &mut net,
        data.val(),
        4,
        &score_cfg(),
        &tel,
        Parallelism::serial(),
    )
    .unwrap();
    for &t in &thread_counts() {
        let scores = score_network_with(
            &mut net,
            data.val(),
            4,
            &score_cfg(),
            &tel,
            Parallelism::new(t),
        )
        .unwrap();
        assert_eq!(baseline.units.len(), scores.units.len(), "threads={t}");
        for (a, b) in baseline.units.iter().zip(&scores.units) {
            assert_eq!(a.name, b.name, "threads={t}");
            for (i, (x, y)) in a.gamma.iter().zip(&b.gamma).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "threads={t}: gamma[{i}] of {} diverged ({x} vs {y})",
                    a.name
                );
            }
            for (i, (x, y)) in a.phi.iter().zip(&b.phi).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "threads={t}: phi[{i}] of {} diverged ({x} vs {y})",
                    a.name
                );
            }
            assert_eq!(
                a.beta_filter, b.beta_filter,
                "threads={t}: beta of {}",
                a.name
            );
        }
    }
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome, scenario: &str) {
    for (i, (x, y)) in a.thresholds.iter().zip(&b.thresholds).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{scenario}: threshold {i} diverged ({x} vs {y})"
        );
    }
    assert_eq!(a.thresholds.len(), b.thresholds.len(), "{scenario}");
    assert_eq!(a.probe_count, b.probe_count, "{scenario}: probe_count");
    assert_eq!(
        a.probe_cache_hits, b.probe_cache_hits,
        "{scenario}: probe_cache_hits"
    );
    assert_eq!(a.arrangement, b.arrangement, "{scenario}: arrangement");
    assert_eq!(a.trace, b.trace, "{scenario}: trace");
    assert_eq!(
        a.threshold_summaries, b.threshold_summaries,
        "{scenario}: threshold summaries"
    );
    assert_eq!(
        a.final_avg_bits.to_bits(),
        b.final_avg_bits.to_bits(),
        "{scenario}: final_avg_bits"
    );
    assert_eq!(
        a.final_probe_accuracy.to_bits(),
        b.final_probe_accuracy.to_bits(),
        "{scenario}: final_probe_accuracy"
    );
    assert_eq!(a.budget_exhausted, b.budget_exhausted, "{scenario}: budget");
}

#[test]
fn search_outcome_bit_identical_across_thread_counts() {
    let (mut net, data) = trained_fixture();
    let tel = Telemetry::disabled();
    let scores = score_network_with(
        &mut net,
        data.val(),
        4,
        &score_cfg(),
        &tel,
        Parallelism::serial(),
    )
    .unwrap();
    let mut serial_net = net.clone();
    let baseline = search_with(
        &mut serial_net,
        &scores,
        data.val(),
        &search_cfg(),
        &tel,
        Parallelism::serial(),
    )
    .unwrap();

    // Every phase-1 move and the final probe increments exactly one of
    // {probe_count, probe_cache_hits}; phase-2 squeezing must never probe.
    let phase1_moves = baseline.trace.iter().filter(|s| !s.squeeze).count();
    assert_eq!(
        baseline.probe_count + baseline.probe_cache_hits,
        phase1_moves + 1,
        "probe accounting identity (phase-1 moves + final probe)"
    );

    for &t in &thread_counts() {
        let mut probe_net = net.clone();
        let outcome = search_with(
            &mut probe_net,
            &scores,
            data.val(),
            &search_cfg(),
            &tel,
            Parallelism::new(t),
        )
        .unwrap();
        assert_outcomes_bit_identical(&baseline, &outcome, &format!("threads={t}"));

        // The searched arrangements install identically: both networks
        // must produce bit-identical logits on the probe set.
        let probe = data.val().head(16).unwrap();
        let a = serial_net
            .forward(probe.images(), cbq::nn::Phase::Eval)
            .unwrap();
        let b = probe_net
            .forward(probe.images(), cbq::nn::Phase::Eval)
            .unwrap();
        let bits = |t: &cbq::tensor::Tensor| -> Vec<u32> {
            t.as_slice().iter().map(|x| x.to_bits()).collect()
        };
        assert_eq!(bits(&a), bits(&b), "threads={t}: quantized logits diverged");
    }
}

#[test]
fn sharded_training_bit_identical_across_thread_counts() {
    let (net, data) = trained_fixture();
    let weights_after = |threads: usize| -> Vec<u32> {
        let mut trainee = net.clone();
        let mut rng = StdRng::seed_from_u64(SEED ^ 0xfeed);
        let tc = TrainerConfig {
            batch_size: 16,
            grad_shards: 3,
            ..TrainerConfig::quick(2, 0.05)
        };
        Trainer::new(tc)
            .with_parallelism(Parallelism::new(threads))
            .fit(&mut trainee, data.train(), &mut rng)
            .unwrap();
        let mut bits = Vec::new();
        trainee.visit_params(&mut |p| {
            bits.extend(p.value.as_slice().iter().map(|v| v.to_bits()));
        });
        bits
    };
    let baseline = weights_after(1);
    assert!(!baseline.is_empty());
    for &t in &thread_counts() {
        assert_eq!(
            baseline,
            weights_after(t),
            "threads={t}: sharded training weights diverged"
        );
    }
}

// ---- full-pipeline determinism, including checkpoints and resume ----

fn pipeline_config(threads: usize) -> CqConfig {
    let mut config = CqConfig::new(2.0, 2.0);
    config.pretrain = Some(TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(2, 0.05)
    });
    config.refine = RefineConfig {
        batch_size: 16,
        shuffle_seed: Some(SEED),
        ..RefineConfig::quick(2, 0.02)
    };
    config.score = score_cfg();
    config.search.step = 0.25;
    config.search.probe_samples = 32;
    config.eval_batch = 64;
    config.calibration_samples = 64;
    config.parallelism = Parallelism::new(threads);
    config
}

fn run_pipeline(
    threads: usize,
    dir: Option<&Path>,
    resume: bool,
    fault: FaultPlan,
) -> cbq::core::Result<CqReport> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(4), &mut rng).unwrap();
    let model = models::mlp(&[data.feature_len(), 24, 16, 4], &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5bd1_e995);
    let mut pipeline = CqPipeline::new(pipeline_config(threads)).with_fault_plan(Arc::new(fault));
    if let Some(dir) = dir {
        pipeline = pipeline.with_checkpoint_dir(dir).with_resume(resume);
    }
    pipeline.run(model, &data, &mut rng)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbq_par_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_reports_match(a: &CqReport, b: &CqReport, scenario: &str) {
    assert_outcomes_bit_identical(&a.search, &b.search, scenario);
    assert_eq!(a.refine_stats, b.refine_stats, "{scenario}: refine stats");
    for (what, x, y) in [
        ("fp_accuracy", a.fp_accuracy, b.fp_accuracy),
        (
            "pre_refine_accuracy",
            a.pre_refine_accuracy,
            b.pre_refine_accuracy,
        ),
        ("final_accuracy", a.final_accuracy, b.final_accuracy),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{scenario}: {what} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn pipeline_and_checkpoint_bytes_bit_identical_across_thread_counts() {
    let serial_dir = scratch_dir("serial");
    let baseline = run_pipeline(1, Some(&serial_dir), false, FaultPlan::none()).unwrap();

    for &t in &thread_counts() {
        let dir = scratch_dir(&format!("t{t}"));
        let report = run_pipeline(t, Some(&dir), false, FaultPlan::none()).unwrap();
        assert_reports_match(&baseline, &report, &format!("threads={t}"));

        // Every phase checkpoint must be byte-identical. `meta.ckpt` is
        // the one deliberate exception: it records the worker count that
        // produced the run.
        for phase in ["pretrain", "scores", "calibrate", "search", "refine"] {
            let name = format!("{phase}.ckpt");
            let a = std::fs::read(serial_dir.join(&name)).unwrap();
            let b = std::fs::read(dir.join(&name)).unwrap();
            assert_eq!(a, b, "threads={t}: {name} bytes diverged");
        }
        assert!(dir.join("meta.ckpt").exists(), "threads={t}: meta missing");
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&serial_dir).unwrap();
}

#[test]
fn interrupt_under_one_thread_count_resume_under_another() {
    let baseline = run_pipeline(1, None, false, FaultPlan::none()).unwrap();

    // Crash a 4-worker run right after the scores checkpoint, resume it
    // serially; then the reverse: crash a serial run, resume with 4
    // workers. Both must land on the serial baseline bit for bit.
    for (crash_threads, resume_threads, fault) in
        [(4usize, 1usize, "fail-at:scores"), (1, 4, "fail-at:search")]
    {
        let dir = scratch_dir(&format!("resume_{crash_threads}_{resume_threads}"));
        let crashed = run_pipeline(
            crash_threads,
            Some(&dir),
            false,
            FaultPlan::parse(fault).unwrap(),
        );
        assert!(crashed.is_err(), "{fault} did not interrupt the run");
        let resumed = run_pipeline(resume_threads, Some(&dir), true, FaultPlan::none()).unwrap();
        assert_reports_match(
            &baseline,
            &resumed,
            &format!("crash@{crash_threads} resume@{resume_threads} ({fault})"),
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
