//! Integration test comparing the three bit-allocation policies through
//! the public API: CQ per-filter, CQ per-layer, greedy loss-aware.

use cbq::baselines::{allocate_loss_aware, LossAwareConfig};
use cbq::core::{score_network, search, Granularity, ScoreConfig, SearchConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, Sequential, Trainer, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained() -> (Sequential, SyntheticImages) {
    let mut rng = StdRng::seed_from_u64(500);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
    let mut net = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(8, 0.05)
    };
    Trainer::new(tc)
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    (net, data)
}

#[test]
fn all_policies_meet_the_same_target() {
    let target = 2.0f32;

    // CQ per-filter
    let (mut net, data) = trained();
    let scores = score_network(
        &mut net,
        data.val(),
        3,
        &ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        },
    )
    .unwrap();
    let mut cfg = SearchConfig::new(target);
    cfg.probe_samples = 24;
    let per_filter = search(&mut net, &scores, data.val(), &cfg).unwrap();
    assert!(per_filter.final_avg_bits <= target + 1e-4);

    // CQ per-layer
    let (mut net, data) = trained();
    let scores = score_network(
        &mut net,
        data.val(),
        3,
        &ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        },
    )
    .unwrap();
    let mut cfg = SearchConfig::new(target);
    cfg.probe_samples = 24;
    cfg.granularity = Granularity::PerLayer;
    let per_layer = search(&mut net, &scores, data.val(), &cfg).unwrap();
    assert!(per_layer.final_avg_bits <= target + 1e-4);
    for unit in per_layer.arrangement.units() {
        let first = unit.bits[0];
        assert!(
            unit.bits.iter().all(|&b| b == first),
            "per-layer arrangement must be uniform within {}",
            unit.name
        );
    }

    // greedy loss-aware
    let (mut net, data) = trained();
    let mut lcfg = LossAwareConfig::new(target);
    lcfg.probe_samples = 24;
    let loss_aware = allocate_loss_aware(&mut net, data.val(), &lcfg).unwrap();
    assert!(loss_aware.final_avg_bits <= target + 1e-4);
    assert!(loss_aware.probes > 0, "greedy allocation must pay probes");

    // Per-filter granularity moves in finer steps, so it should land
    // closer to (or exactly at) the budget than the coarse policies can
    // guarantee; sanity-check it actually spent a meaningful budget
    // rather than collapsing to all-pruned.
    assert!(per_filter.final_avg_bits > 0.0);
}

#[test]
fn per_filter_arrangement_is_actually_mixed() {
    let (mut net, data) = trained();
    let scores = score_network(
        &mut net,
        data.val(),
        3,
        &ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        },
    )
    .unwrap();
    let mut cfg = SearchConfig::new(2.0);
    cfg.probe_samples = 24;
    let outcome = search(&mut net, &scores, data.val(), &cfg).unwrap();
    // At an aggressive target the per-filter search should use more than
    // one distinct bit-width somewhere (the multi-bit flexibility the
    // paper's Figure 7 shows).
    let distinct: std::collections::BTreeSet<u8> = outcome
        .arrangement
        .units()
        .iter()
        .flat_map(|u| u.bits.iter().map(|b| b.bits()))
        .collect();
    assert!(
        distinct.len() >= 2,
        "expected a mixed arrangement, got {distinct:?}"
    );
}
