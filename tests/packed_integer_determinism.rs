//! Differential battery for the packed low-bit execution engine: the
//! `packed` backend's logits must be **bit-identical** to the wide
//! `integer` backend's for a genuinely mixed arrangement — pruned (0-bit)
//! filters, 1-bit sign rows (XNOR/popcount), 2–4-bit nibble rows (i8
//! MAC), and 5–8-bit wide-fallback rows in the same model — across every
//! worker count in the `CBQ_TEST_THREADS` matrix, across serving shapes
//! (batch coalescing vs. none), under request replay, and through a V3
//! artifact serialization round trip with the CRC-guarded packed-code
//! section attached.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq::quant::{
    act_clip_bounds, install_act_quant, set_act_calibration, BitArrangement, BitWidth,
    UnitArrangement,
};
use cbq::serve::{
    compile_packed_codes, offline_logits, ArchSpec, Backend, BatchPolicy, LoadedModel,
    ModelArtifact, ModelHandle, ModelRegistry, QuantState, Server, ServerConfig,
};
use cbq::telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 41;

/// Worker counts under test, from `CBQ_TEST_THREADS` (default `1,2,4,7`).
fn thread_counts() -> Vec<usize> {
    let spec = std::env::var("CBQ_TEST_THREADS").unwrap_or_else(|_| "1,2,4,7".into());
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!counts.is_empty(), "CBQ_TEST_THREADS={spec} parsed empty");
    counts
}

fn bits_of(picks: &[u8]) -> Vec<BitWidth> {
    picks.iter().map(|&b| BitWidth::new(b).unwrap()).collect()
}

/// A trained 5-layer MLP whose two quantizable middle layers carry a
/// deliberately adversarial bit mix: `fc2` spans the packed row kinds
/// 0/1/2/3/4 (pruned, sign, nibble), `fc3` additionally forces the
/// 5–8-bit wide fallback. Identical for every caller.
fn artifact_fixture() -> (ModelArtifact, SyntheticImages) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 24, 16, 12, spec.num_classes]);
    let mut net = arch.build_init(&mut rng).unwrap();
    Trainer::new(TrainerConfig::quick(2, 0.1))
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    let state = state_dict(&mut net);
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    for batch in data.val().batches(16) {
        net.forward(&batch.images, Phase::Eval).unwrap();
    }
    set_act_calibration(&mut net, false);
    net.clear_cache();

    let mut arrangement = BitArrangement::new();
    arrangement.push(UnitArrangement {
        name: "fc2".into(),
        bits: bits_of(&[0, 1, 1, 2, 2, 3, 3, 4, 4, 1, 2, 3, 4, 0, 1, 4]),
        weights_per_filter: 24,
    });
    arrangement.push(UnitArrangement {
        name: "fc3".into(),
        bits: bits_of(&[5, 6, 8, 1, 0, 2, 7, 3, 4, 8, 1, 5]),
        weights_per_filter: 16,
    });
    let quant = QuantState {
        arrangement,
        act_bits: 3,
        act_clips: act_clip_bounds(&mut net),
    };
    let artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state,
        quant: Some(quant),
        baseline_mix: None,
        packed: None,
    };
    (artifact, data)
}

type Target = (Backend, ModelHandle, Arc<LoadedModel>);

fn load_pair(registry: &ModelRegistry, artifact: &ModelArtifact) -> Vec<Target> {
    [Backend::Integer, Backend::PackedInteger]
        .iter()
        .map(|&backend| {
            let handle = registry.load(backend.as_str(), artifact, backend).unwrap();
            let model = registry.get(&handle).unwrap();
            (backend, handle, model)
        })
        .collect()
}

/// Rows of the test split as single-sample request payloads.
fn request_samples(data: &SyntheticImages) -> Vec<Vec<f32>> {
    let test = data.test();
    let item_len: usize = test.images().shape()[1..].iter().product();
    let images = test.images().as_slice();
    (0..test.len())
        .map(|j| images[j * item_len..(j + 1) * item_len].to_vec())
        .collect()
}

#[test]
fn fixture_exercises_every_packed_row_kind() {
    // Guard the battery's premise: both middle layers compile to packed
    // form, and the mix actually shrinks the code bytes (it would not if
    // everything fell back to wide rows).
    let (artifact, _) = artifact_fixture();
    let codes = compile_packed_codes(&artifact).unwrap();
    assert_eq!(codes.layer_count(), 2);
    assert!(
        codes.packed_code_bytes() < codes.wide_code_bytes(),
        "packed {} bytes vs wide {} — the mix must compress",
        codes.packed_code_bytes(),
        codes.wide_code_bytes()
    );
}

#[test]
fn packed_offline_logits_bit_identical_to_integer() {
    // Offline single-sample inference: the packed engine must reproduce
    // the wide integer engine bit for bit on every test row.
    let (artifact, data) = artifact_fixture();
    let samples = request_samples(&data);
    let registry = ModelRegistry::new();
    let targets = load_pair(&registry, &artifact);
    for (i, sample) in samples.iter().enumerate() {
        let wide = offline_logits(&targets[0].2, sample).unwrap();
        let packed = offline_logits(&targets[1].2, sample).unwrap();
        assert_eq!(wide.len(), packed.len());
        for (a, b) in wide.iter().zip(&packed) {
            assert_eq!(a.to_bits(), b.to_bits(), "sample {i} diverged offline");
        }
    }
}

#[test]
fn packed_served_logits_bit_identical_across_worker_counts() {
    let (artifact, data) = artifact_fixture();
    let samples = request_samples(&data);
    for &workers in &thread_counts() {
        let registry = Arc::new(ModelRegistry::new());
        let targets = load_pair(&registry, &artifact);
        let server = Server::start(
            registry,
            ServerConfig {
                policy: BatchPolicy {
                    // Not a divisor of the request count: ragged batches
                    // form at every worker count.
                    max_batch: 5,
                    max_wait: Duration::from_micros(200),
                    queue_capacity: 1024,
                },
                workers,
            },
            Telemetry::disabled(),
        )
        .unwrap();
        // Concurrent clients interleave both backends so micro-batches
        // mix packed and wide requests in the same queue.
        let mut results = Vec::new();
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for c in 0..3usize {
                let server = &server;
                let samples = &samples;
                let targets = &targets;
                joins.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    for (i, sample) in samples.iter().enumerate() {
                        let t = (i + c) % targets.len();
                        out.push((i, t, server.infer(&targets[t].1, sample.clone()).unwrap()));
                    }
                    out
                }));
            }
            for join in joins {
                results.extend(join.join().expect("client panicked"));
            }
        });
        assert_eq!(results.len(), 3 * samples.len());
        for (i, t, resp) in results {
            let offline = offline_logits(&targets[t].2, &samples[i]).unwrap();
            // Served == own offline reference...
            for (a, b) in resp.logits.iter().zip(&offline) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sample {i} diverged from offline on backend {} at {workers} worker(s)",
                    targets[t].0.as_str(),
                );
            }
            // ...and the two backends' references agree bit for bit, so
            // every served response is transitively backend-agnostic.
            let other = offline_logits(&targets[1 - t].2, &samples[i]).unwrap();
            for (a, b) in offline.iter().zip(&other) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sample {i}: packed and integer disagree at {workers} worker(s)",
                );
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 3 * samples.len() as u64);
        assert_eq!(stats.failed, 0);
    }
}

#[test]
fn packed_replay_log_is_byte_identical_across_serving_shapes() {
    let (artifact, data) = artifact_fixture();
    let samples = request_samples(&data);
    // The "request log": (id, backend index, sample index). Both runs
    // submit exactly this log against integer + packed targets.
    let log: Vec<(u64, usize, usize)> = (0..samples.len() * 2)
        .map(|i| (5000 + i as u64, i % 2, i % samples.len()))
        .collect();

    let run = |workers: usize, max_batch: usize, max_wait_us: u64| -> Vec<Vec<u8>> {
        let registry = Arc::new(ModelRegistry::new());
        let targets = load_pair(&registry, &artifact);
        let server = Server::start(
            registry,
            ServerConfig {
                policy: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_micros(max_wait_us),
                    queue_capacity: 4096,
                },
                workers,
            },
            Telemetry::disabled(),
        )
        .unwrap();
        let tickets: Vec<_> = log
            .iter()
            .map(|&(id, t, s)| {
                (
                    id,
                    server
                        .submit_with_id(id, &targets[t].1, samples[s].clone())
                        .unwrap(),
                )
            })
            .collect();
        let mut responses: Vec<_> = tickets
            .into_iter()
            .map(|(id, ticket)| {
                let resp = ticket.wait().unwrap();
                assert_eq!(resp.id, id);
                resp
            })
            .collect();
        server.shutdown();
        responses.sort_by_key(|r| r.id);
        responses.iter().map(|r| r.canonical_bytes()).collect()
    };

    let widest = thread_counts().into_iter().max().unwrap();
    let first = run(1, 8, 500);
    let second = run(widest, 1, 1);
    assert_eq!(first, second, "replay diverged between serving shapes");
}

#[test]
fn v3_artifact_round_trip_serves_identically() {
    // Attach the packed-code section, push the artifact through the V3
    // byte format, and serve from the decoded copy: load-time CRC +
    // recompile verification must accept it, and the decoded model's
    // logits must match the original's bit for bit.
    let (mut artifact, data) = artifact_fixture();
    artifact.packed = Some(compile_packed_codes(&artifact).unwrap());
    let decoded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    assert!(decoded.packed.is_some(), "packed section lost in transit");

    let registry = ModelRegistry::new();
    let original = registry
        .load("orig", &artifact, Backend::PackedInteger)
        .unwrap();
    let reloaded = registry
        .load("reload", &decoded, Backend::PackedInteger)
        .unwrap();
    let original = registry.get(&original).unwrap();
    let reloaded = registry.get(&reloaded).unwrap();
    for sample in request_samples(&data) {
        let a = offline_logits(&original, &sample).unwrap();
        let b = offline_logits(&reloaded, &sample).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
