//! Telemetry integration test: a full CQ pipeline run against an
//! in-memory [`Collector`] must emit the expected phase spans, coherent
//! probe accounting, and a [`RunReport`] that aggregates them.

use cbq::core::{CqConfig, CqPipeline, RefineConfig, ScoreConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, TrainerConfig};
use cbq::telemetry::{Collector, Level, RunReport, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn quick_config(weight_bits: f32, act_bits: f32) -> CqConfig {
    let mut config = CqConfig::new(weight_bits, act_bits);
    config.pretrain = Some(TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(6, 0.05)
    });
    config.refine = RefineConfig {
        batch_size: 16,
        ..RefineConfig::quick(3, 0.02)
    };
    config.score = ScoreConfig {
        samples_per_class: 8,
        epsilon: 1e-30,
    };
    config.search.probe_samples = 32;
    config
}

#[test]
fn pipeline_emits_phase_spans_and_probe_accounting() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(4), &mut rng).unwrap();
    let model = models::mlp(&[data.feature_len(), 32, 16, 4], &mut rng).unwrap();

    let collector = Arc::new(Collector::new());
    let report = CqPipeline::new(quick_config(2.0, 2.0))
        .with_telemetry(Telemetry::new(vec![collector.clone()]))
        .run(model, &data, &mut rng)
        .unwrap();

    // Every pipeline phase opened (and closed) a span.
    for phase in [
        "pipeline",
        "pretrain",
        "eval.fp",
        "score",
        "calibrate",
        "search",
        "search.phase1",
        "refine",
        "eval.final",
    ] {
        assert!(collector.has_span(phase), "missing span {phase}");
        for d in collector.span_durations(phase) {
            assert!(d >= 0.0, "negative duration for {phase}");
        }
    }
    // The pipeline span encloses everything once.
    assert_eq!(collector.span_count("pipeline"), 1);

    // Probe accounting: the search counted its own probes, and each probe
    // cost at least one forward pass over the probe set.
    let probes = collector.counter_total("search.probes");
    assert!(probes > 0, "no probes counted");
    assert_eq!(probes as usize, report.search.probe_count);
    assert!(collector.counter_total("probe.forward_passes") >= probes);

    // Scoring did forward+backward work per class.
    assert!(collector.counter_total("score.forward_passes") >= 4);
    assert_eq!(
        collector.counter_total("score.forward_passes"),
        collector.counter_total("score.backward_passes")
    );

    // Final gauges mirror the report.
    let final_acc = collector.gauge_last("pipeline.final_accuracy").unwrap();
    assert!((final_acc - f64::from(report.final_accuracy)).abs() < 1e-6);
    let avg_bits = collector.gauge_last("pipeline.avg_bits").unwrap();
    assert!((avg_bits - f64::from(report.search.final_avg_bits)).abs() < 1e-6);

    // The run closed with the summary event.
    let done = collector.events_at_most(Level::Info);
    assert!(
        done.iter().any(|r| r.name == "pipeline.done"),
        "pipeline.done event not emitted"
    );

    // A RunReport built from the same stream sees the phases and counters.
    let run_report = RunReport::from_records("e2e", &collector.records());
    for phase in ["pretrain", "score", "search", "refine"] {
        assert!(
            run_report.phases.iter().any(|p| p.name == phase),
            "run report missing phase {phase}"
        );
    }
    assert_eq!(run_report.counter_total("search.probes"), probes);
    let json = run_report.to_json();
    assert!(json.contains("\"label\": \"e2e\""));
    assert!(json.contains("search.probes"));
}

#[test]
fn disabled_telemetry_changes_nothing() {
    let run = |with_tel: bool| {
        let mut rng = StdRng::seed_from_u64(11);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
        let pipeline = if with_tel {
            CqPipeline::new(quick_config(2.0, 0.0))
                .with_telemetry(Telemetry::new(vec![Arc::new(Collector::new())]))
        } else {
            CqPipeline::new(quick_config(2.0, 0.0))
        };
        pipeline.run(model, &data, &mut rng).unwrap()
    };
    let plain = run(false);
    let traced = run(true);
    // Instrumentation must not perturb the numerics.
    assert_eq!(plain.final_accuracy, traced.final_accuracy);
    assert_eq!(plain.search.final_avg_bits, traced.search.final_avg_bits);
    assert_eq!(plain.search.probe_count, traced.search.probe_count);
}
