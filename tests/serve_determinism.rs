//! Differential tests proving the serving runtime is *bit-exact*: no
//! matter how client threads interleave, how micro-batches form, or how
//! many workers serve (`CBQ_TEST_THREADS` matrix), every response's
//! logits are bit-identical to offline single-sample evaluation, served
//! accuracy equals the offline `evaluate` number, and replaying a request
//! log on a differently-shaped server yields byte-identical responses.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{evaluate, load_state_dict, state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq::quant::{
    act_clip_bounds, install_act_quant, install_uniform, set_act_calibration, BitWidth,
};
use cbq::serve::{
    offline_logits, ArchSpec, Backend, BatchPolicy, LoadedModel, ModelArtifact, ModelHandle,
    ModelRegistry, QuantState, Server, ServerConfig,
};
use cbq::telemetry::Telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 77;
const BACKENDS: [Backend; 3] = [Backend::Float, Backend::FakeQuant, Backend::Integer];

/// Worker counts under test, from `CBQ_TEST_THREADS` (default `1,2,4,7`).
fn thread_counts() -> Vec<usize> {
    let spec = std::env::var("CBQ_TEST_THREADS").unwrap_or_else(|_| "1,2,4,7".into());
    let counts: Vec<usize> = spec
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    assert!(!counts.is_empty(), "CBQ_TEST_THREADS={spec} parsed empty");
    counts
}

/// A trained MLP captured as a serving artifact (with calibrated
/// activation clips and a uniform 3-bit weight arrangement), plus the
/// dataset it was trained on. Identical for every caller.
fn artifact_fixture() -> (ModelArtifact, SyntheticImages) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let spec = SyntheticSpec::tiny(4);
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 24, 16, spec.num_classes]);
    let mut net = arch.build_init(&mut rng).unwrap();
    Trainer::new(TrainerConfig::quick(2, 0.1))
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    let state = state_dict(&mut net);
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    for batch in data.val().batches(16) {
        net.forward(&batch.images, Phase::Eval).unwrap();
    }
    set_act_calibration(&mut net, false);
    net.clear_cache();
    let quant = QuantState {
        arrangement: install_uniform(&mut net, BitWidth::new(3).unwrap()),
        act_bits: 3,
        act_clips: act_clip_bounds(&mut net),
    };
    let artifact = ModelArtifact {
        arch,
        input_shape: vec![spec.channels, spec.height, spec.width],
        state,
        quant: Some(quant),
        baseline_mix: None,
        packed: None,
    };
    (artifact, data)
}

type Target = (Backend, ModelHandle, Arc<LoadedModel>);

fn load_backends(registry: &ModelRegistry, artifact: &ModelArtifact) -> Vec<Target> {
    BACKENDS
        .iter()
        .map(|&backend| {
            let handle = registry.load(backend.as_str(), artifact, backend).unwrap();
            let model = registry.get(&handle).unwrap();
            (backend, handle, model)
        })
        .collect()
}

/// Rows of the test split as single-sample request payloads.
fn request_samples(data: &SyntheticImages) -> Vec<Vec<f32>> {
    let test = data.test();
    let item_len: usize = test.images().shape()[1..].iter().product();
    let images = test.images().as_slice();
    (0..test.len())
        .map(|j| images[j * item_len..(j + 1) * item_len].to_vec())
        .collect()
}

#[test]
fn served_logits_bit_identical_to_offline_across_worker_counts() {
    let (artifact, data) = artifact_fixture();
    let samples = request_samples(&data);
    for &workers in &thread_counts() {
        let registry = Arc::new(ModelRegistry::new());
        let targets = load_backends(&registry, &artifact);
        let server = Server::start(
            registry,
            ServerConfig {
                policy: BatchPolicy {
                    // Deliberately not a divisor of the request count, so
                    // ragged batches form at every worker count.
                    max_batch: 5,
                    max_wait: Duration::from_micros(200),
                    queue_capacity: 1024,
                },
                workers,
            },
            Telemetry::disabled(),
        )
        .unwrap();
        // Three concurrent clients interleave every sample against every
        // backend; batches mix whatever lands together in the queue.
        let mut results = Vec::new();
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for c in 0..3usize {
                let server = &server;
                let samples = &samples;
                let targets = &targets;
                joins.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    for (i, sample) in samples.iter().enumerate() {
                        let t = (i + c) % targets.len();
                        out.push((i, t, server.infer(&targets[t].1, sample.clone()).unwrap()));
                    }
                    out
                }));
            }
            for join in joins {
                results.extend(join.join().expect("client panicked"));
            }
        });
        assert_eq!(results.len(), 3 * samples.len());
        for (i, t, resp) in results {
            let offline = offline_logits(&targets[t].2, &samples[i]).unwrap();
            assert_eq!(
                resp.logits.len(),
                offline.len(),
                "{} workers, backend {}",
                workers,
                targets[t].0.as_str()
            );
            for (a, b) in resp.logits.iter().zip(&offline) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "sample {i} diverged from offline on backend {} at {} worker(s)",
                    targets[t].0.as_str(),
                    workers
                );
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.completed, 3 * samples.len() as u64);
        assert_eq!(stats.failed, 0);
        assert_eq!(
            stats.steady_pool_misses, 0,
            "steady-state pool misses at {workers} worker(s)"
        );
    }
}

#[test]
fn served_accuracy_equals_offline_evaluate() {
    let (artifact, data) = artifact_fixture();
    let samples = request_samples(&data);
    let labels = data.test().labels().to_vec();

    // Offline reference: rebuild the float network from the artifact and
    // run the stock evaluation loop.
    let mut net = artifact.arch.build().unwrap();
    load_state_dict(&mut net, &artifact.state).unwrap();
    let offline_acc = evaluate(&mut net, data.test(), 64).unwrap();

    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("float", &artifact, Backend::Float).unwrap();
    let server = Server::start(
        registry,
        ServerConfig {
            policy: BatchPolicy {
                max_batch: 7,
                max_wait: Duration::from_micros(200),
                queue_capacity: 1024,
            },
            workers: 2,
        },
        Telemetry::disabled(),
    )
    .unwrap();
    let mut correct = 0usize;
    for (sample, &label) in samples.iter().zip(&labels) {
        let resp = server.infer(&handle, sample.clone()).unwrap();
        if resp.argmax == label {
            correct += 1;
        }
    }
    server.shutdown();
    let served_acc = correct as f32 / samples.len() as f32;
    assert_eq!(
        served_acc.to_bits(),
        offline_acc.to_bits(),
        "served accuracy {served_acc} != offline evaluate {offline_acc}"
    );
}

#[test]
fn replaying_a_request_log_yields_byte_identical_responses() {
    let (artifact, data) = artifact_fixture();
    let samples = request_samples(&data);
    // The "request log": (id, backend index, sample index), ids chosen by
    // the client. Both runs submit exactly this log.
    let log: Vec<(u64, usize, usize)> = (0..samples.len() * BACKENDS.len())
        .map(|i| (1000 + i as u64, i % BACKENDS.len(), i % samples.len()))
        .collect();

    let run = |workers: usize, max_batch: usize, max_wait_us: u64| -> Vec<Vec<u8>> {
        let registry = Arc::new(ModelRegistry::new());
        let targets = load_backends(&registry, &artifact);
        let server = Server::start(
            registry,
            ServerConfig {
                policy: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_micros(max_wait_us),
                    queue_capacity: 4096,
                },
                workers,
            },
            Telemetry::disabled(),
        )
        .unwrap();
        // Submit asynchronously so micro-batches actually coalesce, then
        // redeem every ticket.
        let tickets: Vec<_> = log
            .iter()
            .map(|&(id, t, s)| {
                (
                    id,
                    server
                        .submit_with_id(id, &targets[t].1, samples[s].clone())
                        .unwrap(),
                )
            })
            .collect();
        let mut responses: Vec<_> = tickets
            .into_iter()
            .map(|(id, ticket)| {
                let resp = ticket.wait().unwrap();
                assert_eq!(resp.id, id);
                resp
            })
            .collect();
        server.shutdown();
        responses.sort_by_key(|r| r.id);
        responses.iter().map(|r| r.canonical_bytes()).collect()
    };

    // Deliberately different serving shapes: single worker forming large
    // batches vs. the widest tested worker count with no coalescing.
    let widest = thread_counts().into_iter().max().unwrap();
    let first = run(1, 8, 500);
    let second = run(widest, 1, 1);
    assert_eq!(first, second, "replay diverged between serving shapes");
}
