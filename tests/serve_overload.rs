//! Overload behavior of the serving runtime, made fully deterministic
//! with the injectable clock: a frozen [`ManualClock`] plus a `max_wait`
//! far beyond the test means the scheduler can never dispatch a partial
//! batch on its own, so admission counts are exact — the bounded queue
//! fills to exactly its capacity, every further submit is rejected with
//! the typed [`ServeError::Overloaded`], the rejections are counted in
//! telemetry, and the graceful drain completes every admitted request
//! without deadlock.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{state_dict, Trainer, TrainerConfig};
use cbq::serve::{
    offline_logits, ArchSpec, Backend, BatchPolicy, ManualClock, ModelArtifact, ModelRegistry,
    ServeError, Server, ServerConfig,
};
use cbq::telemetry::{Collector, Telemetry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 41;

/// A small trained float artifact plus one valid request payload.
fn fixture() -> (ModelArtifact, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let spec = SyntheticSpec::tiny(3);
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let arch = ArchSpec::Mlp(vec![spec.feature_len(), 16, spec.num_classes]);
    let mut net = arch.build_init(&mut rng).unwrap();
    Trainer::new(TrainerConfig::quick(1, 0.1))
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    let state = state_dict(&mut net);
    let item_len: usize = spec.feature_len();
    let sample = data.test().images().as_slice()[..item_len].to_vec();
    (
        ModelArtifact {
            arch,
            input_shape: vec![spec.channels, spec.height, spec.width],
            state,
            quant: None,
            baseline_mix: None,
            packed: None,
        },
        sample,
    )
}

#[test]
fn burst_fills_queue_rejects_excess_and_drains_cleanly() {
    let (artifact, sample) = fixture();
    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("m", &artifact, Backend::Float).unwrap();
    let model = registry.get(&handle).unwrap();

    let capacity = 4usize;
    let collector = Arc::new(Collector::new());
    let server = Server::start_with(
        registry,
        ServerConfig {
            policy: BatchPolicy {
                // max_batch above the queue capacity + a frozen manual
                // clock: the worker cannot dispatch until the drain, so
                // the admission outcome of every submit is deterministic.
                max_batch: 2 * capacity,
                max_wait: Duration::from_secs(3600),
                queue_capacity: capacity,
            },
            workers: 1,
        },
        Arc::new(ManualClock::new()),
        Telemetry::new(vec![collector.clone()]),
    )
    .unwrap();

    let burst = 12usize;
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for i in 0..burst {
        match server.submit(&handle, sample.clone()) {
            Ok(ticket) => tickets.push(ticket),
            Err(ServeError::Overloaded { capacity: cap }) => {
                assert_eq!(cap, capacity, "rejection names the exceeded capacity");
                assert!(i >= capacity, "submit {i} rejected before the queue filled");
                // Load shedding is backpressure, not failure: the typed
                // rejection must classify as retryable so fleet clients
                // fail over instead of surfacing a terminal error.
                let shed = ServeError::Overloaded { capacity: cap };
                assert!(shed.is_retryable(), "Overloaded must be retryable");
                assert!(!shed.is_terminal(), "Overloaded must not be terminal");
                rejected += 1;
            }
            Err(e) => panic!("submit {i}: unexpected error {e}"),
        }
        assert!(
            server.queue_depth() <= capacity,
            "queue grew past its bound"
        );
    }
    assert_eq!(
        tickets.len(),
        capacity,
        "queue admitted exactly its capacity"
    );
    assert_eq!(rejected, burst - capacity);

    // Graceful drain: the frozen clock never released the batch, so all
    // admitted requests are still queued; shutdown must complete them
    // (drain readiness overrides max_wait/max_batch) and then join.
    let stats = server.shutdown();
    let offline = offline_logits(&model, &sample).unwrap();
    for ticket in tickets {
        let resp = ticket.wait().expect("admitted request dropped by drain");
        assert_eq!(resp.logits.len(), offline.len());
        for (a, b) in resp.logits.iter().zip(&offline) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The whole queue drained as one batch.
        assert_eq!(resp.batch_size, capacity);
    }

    assert_eq!(stats.accepted, capacity as u64);
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(stats.completed, capacity as u64);
    // Shed requests land in the `rejected` ledger only — never
    // double-counted as execution failures.
    assert_eq!(stats.failed, 0, "shed requests double-counted as failures");
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.largest_batch, capacity);

    // Rejections were counted in telemetry, not just returned to callers.
    assert_eq!(collector.counter_total("serve.rejected"), rejected as u64);
    assert_eq!(collector.counter_total("serve.completed"), capacity as u64);
}

#[test]
fn concurrent_burst_never_deadlocks_and_accounts_every_request() {
    let (artifact, sample) = fixture();
    let registry = Arc::new(ModelRegistry::new());
    let handle = registry.load("m", &artifact, Backend::Float).unwrap();

    let server = Server::start(
        registry,
        ServerConfig {
            policy: BatchPolicy {
                max_batch: 3,
                max_wait: Duration::from_micros(100),
                queue_capacity: 8,
            },
            workers: 2,
        },
        Telemetry::disabled(),
    )
    .unwrap();

    // Six clients hammer the tiny queue; every submit either completes
    // or is rejected as Overloaded — nothing hangs, nothing is lost.
    let (done, rejected): (u64, u64) = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..6)
            .map(|_| {
                let server = &server;
                let sample = &sample;
                let handle = &handle;
                scope.spawn(move || {
                    let (mut ok, mut no) = (0u64, 0u64);
                    for _ in 0..40 {
                        match server.infer(handle, sample.clone()) {
                            Ok(_) => ok += 1,
                            Err(e) if e.is_retryable() => {
                                assert!(
                                    matches!(e, ServeError::Overloaded { .. }),
                                    "only overload is retryable here, got {e}"
                                );
                                no += 1;
                            }
                            Err(e) => panic!("unexpected terminal error {e}"),
                        }
                    }
                    (ok, no)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client panicked"))
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    });

    let stats = server.shutdown();
    assert_eq!(done + rejected, 240);
    assert_eq!(stats.completed, done);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.accepted, done, "every accepted request completed");
}
