//! Integration tests of the quantization substrate against live networks:
//! QAT through fake-quant transforms, activation calibration, arrangement
//! round trips.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{evaluate, losses, models, Layer, Phase, Sgd, SgdConfig, Trainer, TrainerConfig};
use cbq::quant::{
    clear_weight_transforms, install_act_quant, install_arrangement, install_uniform, quant_units,
    set_act_bits, set_act_calibration, BitArrangement, BitWidth,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn qat_improves_a_quantized_network() {
    let mut rng = StdRng::seed_from_u64(200);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
    let mut net = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(10, 0.05)
    };
    Trainer::new(tc)
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();

    install_uniform(&mut net, BitWidth::new(1).unwrap());
    let before = evaluate(&mut net, data.test(), 64).unwrap();

    // plain cross-entropy QAT through the STE
    let mut opt = Sgd::new(SgdConfig {
        lr: 0.02,
        momentum: 0.9,
        weight_decay: 1e-4,
    });
    for _ in 0..8 {
        for batch in data.train().batches_shuffled(16, &mut rng) {
            net.zero_grad();
            let logits = net.forward(&batch.images, Phase::Train).unwrap();
            let (_, grad) = losses::cross_entropy(&logits, &batch.labels).unwrap();
            net.backward(&grad).unwrap();
            opt.step(&mut net).unwrap();
        }
    }
    let after = evaluate(&mut net, data.test(), 64).unwrap();
    assert!(after >= before, "QAT regressed: {before} -> {after}");
    assert!(after > 0.5, "QAT failed to learn: {after}");
}

#[test]
fn activation_calibration_bounds_match_observations() {
    let mut rng = StdRng::seed_from_u64(201);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
    let mut net = models::mlp(&[data.feature_len(), 16, 2], &mut rng).unwrap();
    let n = install_act_quant(&mut net);
    assert_eq!(n, 1, "one hidden ReLU expected");
    set_act_calibration(&mut net, true);
    for batch in data.val().batches(16) {
        net.forward(&batch.images, Phase::Eval).unwrap();
    }
    set_act_calibration(&mut net, false);
    let mut clip = None;
    net.visit_layers_mut(&mut |l| {
        if let Some(q) = l.activation_quantizer_mut() {
            clip = Some(q.clip());
        }
    });
    let clip = clip.expect("quantizer installed");
    assert!(clip > 0.0, "calibration saw no positive activations");

    // with 8-bit activations the outputs barely change
    let x = data.test().batches(8).next().unwrap().images;
    set_act_bits(&mut net, None);
    let y_fp = net.forward(&x, Phase::Eval).unwrap();
    set_act_bits(&mut net, Some(BitWidth::new(8).unwrap()));
    let y_q8 = net.forward(&x, Phase::Eval).unwrap();
    let diff = y_fp.sub(&y_q8).unwrap().max_abs();
    assert!(diff < 0.25, "8-bit activations changed logits by {diff}");
}

#[test]
fn arrangement_survives_serde_and_reinstall() {
    let mut rng = StdRng::seed_from_u64(202);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(2), &mut rng).unwrap();
    let mut net = models::mlp(&[data.feature_len(), 16, 8, 2], &mut rng).unwrap();
    let arr = install_uniform(&mut net, BitWidth::new(3).unwrap());
    let acc1 = evaluate(&mut net, data.test(), 64).unwrap();

    let json = serde_json::to_string(&arr).unwrap();
    let loaded: BitArrangement = serde_json::from_str(&json).unwrap();
    assert_eq!(loaded, arr);

    clear_weight_transforms(&mut net);
    install_arrangement(&mut net, &loaded).unwrap();
    let acc2 = evaluate(&mut net, data.test(), 64).unwrap();
    assert!(
        (acc1 - acc2).abs() < 1e-6,
        "reinstall changed accuracy: {acc1} vs {acc2}"
    );
}

#[test]
fn quant_units_align_across_model_zoo() {
    let mut rng = StdRng::seed_from_u64(203);
    // VGG-small: 6 units
    let vcfg = models::VggConfig::for_input(3, 12, 12, 10);
    let mut vgg = models::vgg_small(&vcfg, &mut rng).unwrap();
    assert_eq!(quant_units(&mut vgg).len(), 6);
    // ResNet-20 (3 stages x 3 blocks): 18 block convs + 2 downsample
    let rcfg = models::ResNetConfig::resnet20(3, 1, 10);
    let mut rn = models::resnet20(&rcfg, &mut rng).unwrap();
    assert_eq!(quant_units(&mut rn).len(), 20);
    // MLP with 3 hidden layers: 2 quantizable
    let mut mlp = models::mlp(&[10, 8, 8, 8, 2], &mut rng).unwrap();
    assert_eq!(quant_units(&mut mlp).len(), 2);
}

#[test]
fn pruned_filters_produce_zero_contributions() {
    let mut rng = StdRng::seed_from_u64(204);
    let mut net = cbq::nn::Sequential::new("n");
    net.push(cbq::nn::layers::Linear::new("fc1", 4, 4, false, &mut rng).unwrap());
    // prune every filter of fc1
    let mut arr = BitArrangement::new();
    arr.push(cbq::quant::UnitArrangement::uniform(
        "fc1",
        4,
        4,
        BitWidth::ZERO,
    ));
    install_arrangement(&mut net, &arr).unwrap();
    let x = cbq::tensor::Tensor::randn(&[2, 4], 1.0, &mut rng);
    let y = net.forward(&x, Phase::Eval).unwrap();
    assert!(y.max_abs() == 0.0, "pruned layer must output zeros");
}
