//! Crash-safety integration tests: a pipeline run interrupted by an
//! injected fault and then resumed from its checkpoints must reproduce
//! the uninterrupted run bit-for-bit, even when the checkpoint it crashed
//! behind was torn mid-write. (The `chaos` binary in `cbq-bench` sweeps
//! every phase; these tests cover the representative cases in CI.)

use cbq::core::{CqConfig, CqPipeline, CqReport, RefineConfig, ScoreConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, Sequential, TrainerConfig};
use cbq::resilience::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SEED: u64 = 42;

fn quick_config() -> CqConfig {
    let mut config = CqConfig::new(2.0, 2.0);
    config.pretrain = Some(TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(2, 0.05)
    });
    config.refine = RefineConfig {
        batch_size: 16,
        // Seeded shuffle: resumed epochs replay the same batch order as
        // the uninterrupted run.
        shuffle_seed: Some(SEED),
        ..RefineConfig::quick(3, 0.02)
    };
    config.score = ScoreConfig {
        samples_per_class: 8,
        epsilon: 1e-30,
    };
    config.search.step = 0.25;
    config.search.probe_samples = 32;
    config.eval_batch = 64;
    config.calibration_samples = 64;
    config
}

/// Identical (model, data) for every run in a test.
fn fresh_inputs() -> (Sequential, SyntheticImages) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(4), &mut rng).unwrap();
    let model = models::mlp(&[data.feature_len(), 24, 16, 4], &mut rng).unwrap();
    (model, data)
}

fn run_once(dir: Option<&Path>, resume: bool, fault: FaultPlan) -> cbq::core::Result<CqReport> {
    let (model, data) = fresh_inputs();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5bd1_e995);
    let mut pipeline = CqPipeline::new(quick_config()).with_fault_plan(Arc::new(fault));
    if let Some(dir) = dir {
        pipeline = pipeline.with_checkpoint_dir(dir).with_resume(resume);
    }
    pipeline.run(model, &data, &mut rng)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cbq_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_matches_baseline(baseline: &CqReport, resumed: &CqReport, scenario: &str) {
    assert_eq!(
        baseline.search, resumed.search,
        "{scenario}: resumed search outcome diverged"
    );
    assert_eq!(
        baseline.refine_stats, resumed.refine_stats,
        "{scenario}: resumed refine stats diverged"
    );
    for (what, a, b) in [
        ("fp_accuracy", baseline.fp_accuracy, resumed.fp_accuracy),
        (
            "pre_refine_accuracy",
            baseline.pre_refine_accuracy,
            resumed.pre_refine_accuracy,
        ),
        (
            "final_accuracy",
            baseline.final_accuracy,
            resumed.final_accuracy,
        ),
    ] {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{scenario}: {what} diverged ({a} vs {b})"
        );
    }
}

#[test]
fn interrupted_then_resumed_matches_uninterrupted() {
    let baseline = run_once(None, false, FaultPlan::none()).unwrap();

    // Crash after an early phase (everything downstream recomputed) and
    // mid-refine (the per-epoch checkpoint path).
    for fault in ["fail-at:scores", "fail-at:refine-epoch-1"] {
        let dir = scratch_dir("resume");
        let crashed = run_once(Some(&dir), false, FaultPlan::parse(fault).unwrap());
        assert!(crashed.is_err(), "{fault} did not interrupt the run");

        let resumed = run_once(Some(&dir), true, FaultPlan::none()).unwrap();
        assert_matches_baseline(&baseline, &resumed, fault);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn truncated_checkpoint_is_detected_and_recovered() {
    let baseline = run_once(None, false, FaultPlan::none()).unwrap();

    // The search checkpoint is torn right after it is written, then the
    // process dies. Resume must spot the corruption (CRC mismatch),
    // recompute the search, and still land on the baseline.
    let dir = scratch_dir("torn");
    let fault = FaultPlan::parse("truncate:search,fail-at:search").unwrap();
    let crashed = run_once(Some(&dir), false, fault);
    assert!(crashed.is_err());

    let resumed = run_once(Some(&dir), true, FaultPlan::none()).unwrap();
    assert_matches_baseline(&baseline, &resumed, "torn search checkpoint");
    // the recomputed search re-wrote a valid checkpoint
    assert!(dir.join("search.ckpt").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_with_empty_directory_runs_from_scratch() {
    let baseline = run_once(None, false, FaultPlan::none()).unwrap();
    let dir = scratch_dir("empty");
    let resumed = run_once(Some(&dir), true, FaultPlan::none()).unwrap();
    assert_matches_baseline(&baseline, &resumed, "resume from empty dir");
    std::fs::remove_dir_all(&dir).unwrap();
}
