//! Deployment-path integration test: a trained, searched, fake-quantized
//! network must produce the same outputs when executed with true integer
//! code arithmetic (`cbq_quant::integer`) — the property that makes the
//! fake-quant training story valid on integer hardware.

use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, state_dict, Layer, Phase, Trainer, TrainerConfig};
use cbq::quant::{
    install_act_quant, install_uniform, set_act_bits, set_act_calibration, BitWidth,
    IntActivations, IntegerLinear,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn integer_execution_matches_fake_quant_network() {
    let mut rng = StdRng::seed_from_u64(400);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
    let f = data.feature_len();
    // mlp: flatten0, fc1 (fp), relu1, fc2 (quantized), relu2, fc3 (fp out)
    let mut net = models::mlp(&[f, 16, 8, 3], &mut rng).unwrap();
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(6, 0.05)
    };
    Trainer::new(tc)
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();

    // calibrate + enable activation quantization, quantize fc2 to 4 bits
    install_act_quant(&mut net);
    set_act_calibration(&mut net, true);
    for batch in data.val().batches(32) {
        net.forward(&batch.images, Phase::Eval).unwrap();
    }
    set_act_calibration(&mut net, false);
    let act_bits = BitWidth::new(4).unwrap();
    set_act_bits(&mut net, Some(act_bits));
    let weight_bits = BitWidth::new(4).unwrap();
    install_uniform(&mut net, weight_bits);

    // reference: fake-quant forward through the network
    let batch = data.test().batches(8).next().unwrap();
    let reference = net.forward(&batch.images, Phase::Eval).unwrap();

    // extract weights and calibrated clips
    let params = state_dict(&mut net);
    let w1 = params.params.get("fc1.weight").unwrap().clone();
    let b1 = params.params.get("fc1.bias").unwrap().clone();
    let w2 = params.params.get("fc2.weight").unwrap().clone();
    let b2 = params.params.get("fc2.bias").unwrap().clone();
    let w3 = params.params.get("fc3.weight").unwrap().clone();
    let b3 = params.params.get("fc3.bias").unwrap().clone();
    let mut clips = Vec::new();
    net.visit_layers_mut(&mut |l| {
        if let Some(q) = l.activation_quantizer_mut() {
            clips.push(q.clip());
        }
    });
    assert_eq!(clips.len(), 2);

    // manual mixed fp/integer execution
    let x = batch.images.reshape(&[batch.len(), f]).unwrap();
    // fc1 (fp, unquantized weights) + bias
    let mut h1 = x.matmul_nt(&w1).unwrap();
    for (i, v) in h1.as_mut_slice().iter_mut().enumerate() {
        *v += b1.as_slice()[i % 16];
    }
    // relu1 + 4-bit activation codes at clip[0]
    let h1 = h1.map(|v| v.max(0.0));
    let a1 = IntActivations::quantize(&h1, clips[0], act_bits).unwrap();
    // fc2 in integer code arithmetic (4-bit weights)
    let lin2 = IntegerLinear::quantize(&w2, &[weight_bits; 8], Some(&b2)).unwrap();
    let h2 = lin2.forward(&a1).unwrap();
    // relu2 + codes at clip[1]
    let h2 = h2.map(|v| v.max(0.0));
    let a2 = IntActivations::quantize(&h2, clips[1], act_bits).unwrap();
    // fc3 (fp output layer) applied to dequantized activations
    let mut logits = a2.dequantize().matmul_nt(&w3).unwrap();
    for (i, v) in logits.as_mut_slice().iter_mut().enumerate() {
        *v += b3.as_slice()[i % 3];
    }

    let diff = logits.sub(&reference).unwrap().max_abs();
    assert!(
        diff < 1e-3,
        "integer deployment path deviates from fake-quant network by {diff}"
    );
    // and predictions agree exactly
    assert_eq!(
        logits.argmax_rows().unwrap(),
        reference.argmax_rows().unwrap()
    );
}
