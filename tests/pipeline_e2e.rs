//! End-to-end integration tests spanning every crate: data generation →
//! training → scoring → search → refining → accounting, through the
//! public facade API.

use cbq::core::{CqConfig, CqPipeline, RefineConfig, ScoreConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, TrainerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_config(weight_bits: f32, act_bits: f32) -> CqConfig {
    let mut config = CqConfig::new(weight_bits, act_bits);
    config.pretrain = Some(TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(10, 0.05)
    });
    config.refine = RefineConfig {
        batch_size: 16,
        ..RefineConfig::quick(6, 0.02)
    };
    config.score = ScoreConfig {
        samples_per_class: 8,
        epsilon: 1e-30,
    };
    config.search.probe_samples = 32;
    config
}

#[test]
fn mlp_pipeline_meets_bit_target_and_recovers_accuracy() {
    let mut rng = StdRng::seed_from_u64(100);
    let spec = SyntheticSpec {
        train_per_class: 80,
        ..SyntheticSpec::tiny(4)
    };
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let model = models::mlp(&[data.feature_len(), 48, 24, 12, 4], &mut rng).unwrap();
    let mut config = quick_config(2.0, 4.0);
    config.pretrain = Some(TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(25, 0.08)
    });
    let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();

    assert!(report.fp_accuracy > 0.8, "fp {:.3}", report.fp_accuracy);
    assert!(
        report.search.final_avg_bits <= 2.0 + 1e-4,
        "avg bits {} above target",
        report.search.final_avg_bits
    );
    assert!(
        report.final_accuracy >= report.pre_refine_accuracy - 0.05,
        "refining regressed: {} -> {}",
        report.pre_refine_accuracy,
        report.final_accuracy
    );
    assert!(
        report.final_accuracy > 0.6,
        "final {:.3}",
        report.final_accuracy
    );
    // thresholds non-decreasing
    for w in report.search.thresholds.windows(2) {
        assert!(
            w[0] <= w[1] + 1e-12,
            "thresholds not sorted: {:?}",
            report.search.thresholds
        );
    }
    // arrangement covers exactly the hidden quantizable layers
    let names: Vec<&str> = report
        .search
        .arrangement
        .units()
        .iter()
        .map(|u| u.name.as_str())
        .collect();
    assert_eq!(names, vec!["fc2", "fc3"]);
}

#[test]
fn vgg_pipeline_runs_and_prunes_fc_layers_most() {
    let mut rng = StdRng::seed_from_u64(101);
    let spec = SyntheticSpec {
        num_classes: 4,
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 60,
        val_per_class: 16,
        test_per_class: 16,
        ..SyntheticSpec::tiny(4)
    };
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let vcfg = cbq::nn::models::VggConfig {
        in_channels: 1,
        height: 8,
        width: 8,
        base_width: 8,
        fc_dim: 32,
        num_classes: 4,
    };
    let model = models::vgg_small(&vcfg, &mut rng).unwrap();
    let mut config = quick_config(2.0, 2.0);
    config.search.step = 0.2;
    let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();

    assert!(report.search.final_avg_bits <= 2.0 + 1e-4);
    // all six quantizable layers present, in order
    let names: Vec<&str> = report
        .search
        .arrangement
        .units()
        .iter()
        .map(|u| u.name.as_str())
        .collect();
    assert_eq!(names, vec!["conv2", "conv3", "conv4", "fc5", "fc6", "fc7"]);
    // compression must beat 32/max_bits lower bound sanity
    assert!(report.size.compression_ratio() > 2.0);
}

#[test]
fn resnet_pipeline_scores_every_block_conv() {
    let mut rng = StdRng::seed_from_u64(102);
    let spec = SyntheticSpec {
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 40,
        val_per_class: 12,
        test_per_class: 12,
        ..SyntheticSpec::tiny(3)
    };
    let data = SyntheticImages::generate(&spec, &mut rng).unwrap();
    let rcfg = cbq::nn::models::ResNetConfig {
        in_channels: 1,
        base_width: 4,
        expand: 1,
        blocks_per_stage: 2,
        num_classes: 3,
    };
    let model = models::resnet20(&rcfg, &mut rng).unwrap();
    let mut config = quick_config(2.0, 3.0);
    config.search.step = 0.3;
    let report = CqPipeline::new(config).run(model, &data, &mut rng).unwrap();

    // 6 blocks * 2 convs + 2 downsample convs = 14 quantizable units
    assert_eq!(report.search.arrangement.units().len(), 14);
    assert!(report.search.final_avg_bits <= 2.0 + 1e-4);
    // scores exist for every unit and stay within [0, classes]
    for unit in &report.scores.units {
        assert!(!unit.phi.is_empty());
        assert!(unit.phi.iter().all(|&p| (0.0..=3.0 + 1e-9).contains(&p)));
    }
}

#[test]
fn higher_bit_budget_never_reduces_final_accuracy_much() {
    // 4.0 average bits should do at least as well as 1.0 average bits
    // (generous 10-point slack keeps the test robust to training noise).
    let run = |bits: f32| {
        let mut rng = StdRng::seed_from_u64(103);
        let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
        let model = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
        CqPipeline::new(quick_config(bits, 0.0))
            .run(model, &data, &mut rng)
            .unwrap()
    };
    let low = run(1.0);
    let high = run(4.0);
    assert!(low.search.final_avg_bits <= 1.0 + 1e-4);
    assert!(
        high.final_accuracy >= low.final_accuracy - 0.10,
        "4-bit {} unexpectedly below 1-bit {}",
        high.final_accuracy,
        low.final_accuracy
    );
}
