//! Integration + property tests of the §III-C threshold search through
//! the public API.

use cbq::core::{score_network, search, ScoreConfig, SearchConfig};
use cbq::data::{SyntheticImages, SyntheticSpec};
use cbq::nn::{models, Sequential, Trainer, TrainerConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_mlp(seed: u64) -> (Sequential, SyntheticImages, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = SyntheticImages::generate(&SyntheticSpec::tiny(3), &mut rng).unwrap();
    let mut net = models::mlp(&[data.feature_len(), 24, 12, 3], &mut rng).unwrap();
    let tc = TrainerConfig {
        batch_size: 16,
        ..TrainerConfig::quick(8, 0.05)
    };
    Trainer::new(tc)
        .fit(&mut net, data.train(), &mut rng)
        .unwrap();
    (net, data, rng)
}

#[test]
fn search_meets_every_feasible_target() {
    let (mut net, data, _) = trained_mlp(300);
    let scores = score_network(
        &mut net,
        data.val(),
        3,
        &ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        },
    )
    .unwrap();
    for &target in &[0.5f32, 1.0, 2.0, 3.0, 4.0] {
        let mut cfg = SearchConfig::new(target);
        cfg.probe_samples = 24;
        let outcome = search(&mut net, &scores, data.val(), &cfg).unwrap();
        assert!(
            outcome.final_avg_bits <= target + 1e-4,
            "target {target}: got {}",
            outcome.final_avg_bits
        );
        // thresholds sorted
        for w in outcome.thresholds.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // arrangement consistent with its own average
        let recomputed = outcome.arrangement.average_bits();
        assert!((recomputed - outcome.final_avg_bits).abs() < 1e-6);
    }
}

#[test]
fn squeeze_trace_is_monotone_decreasing_in_avg_bits() {
    let (mut net, data, _) = trained_mlp(301);
    let scores = score_network(
        &mut net,
        data.val(),
        3,
        &ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        },
    )
    .unwrap();
    let mut cfg = SearchConfig::new(0.5);
    cfg.probe_samples = 24;
    let outcome = search(&mut net, &scores, data.val(), &cfg).unwrap();
    let squeeze_bits: Vec<f32> = outcome
        .trace
        .iter()
        .filter(|s| s.squeeze)
        .map(|s| s.avg_bits)
        .collect();
    for w in squeeze_bits.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-6,
            "squeeze increased avg bits: {:?}",
            squeeze_bits
        );
    }
}

#[test]
fn higher_scores_get_at_least_as_many_bits() {
    let (mut net, data, _) = trained_mlp(302);
    let scores = score_network(
        &mut net,
        data.val(),
        3,
        &ScoreConfig {
            samples_per_class: 8,
            epsilon: 1e-30,
        },
    )
    .unwrap();
    let mut cfg = SearchConfig::new(2.0);
    cfg.probe_samples = 24;
    let outcome = search(&mut net, &scores, data.val(), &cfg).unwrap();
    for (unit_scores, unit_arr) in scores.units.iter().zip(outcome.arrangement.units()) {
        assert_eq!(unit_scores.name, unit_arr.name);
        for i in 0..unit_scores.phi.len() {
            for j in 0..unit_scores.phi.len() {
                if unit_scores.phi[i] > unit_scores.phi[j] {
                    assert!(
                        unit_arr.bits[i] >= unit_arr.bits[j],
                        "filter {i} (score {}) got {:?} < filter {j} (score {}) {:?}",
                        unit_scores.phi[i],
                        unit_arr.bits[i],
                        unit_scores.phi[j],
                        unit_arr.bits[j]
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Average bits of any searched arrangement stays within [0, max_bits]
    /// and meets the target, across random step sizes and targets.
    #[test]
    fn search_respects_target_for_random_configs(
        target in 0.25f32..4.0,
        step in 0.05f64..0.5,
    ) {
        let (mut net, data, _) = trained_mlp(303);
        let scores = score_network(
            &mut net,
            data.val(),
            3,
            &ScoreConfig { samples_per_class: 4, epsilon: 1e-30 },
        ).unwrap();
        let mut cfg = SearchConfig::new(target);
        cfg.step = step;
        cfg.probe_samples = 12;
        let outcome = search(&mut net, &scores, data.val(), &cfg).unwrap();
        prop_assert!(outcome.final_avg_bits <= target + 1e-4);
        prop_assert!(outcome.final_avg_bits >= 0.0);
        for unit in outcome.arrangement.units() {
            for b in &unit.bits {
                prop_assert!(b.bits() <= cfg.max_bits);
            }
        }
    }
}
